//! Machine-readable run records for the `experiments` binary.
//!
//! `experiments --manifest out.json` emits one [`Manifest`] per run so the
//! bench trajectory (per-experiment wall time, table sizes, job count)
//! accumulates across CI runs and PRs. The JSON is hand-rendered — the
//! build environment has no registry access, so no serde — and kept to a
//! flat, stable schema:
//!
//! ```json
//! {
//!   "schema": 4,
//!   "scale": "smoke",
//!   "jobs": 4,
//!   "total_wall_ms": 123.456,
//!   "fuzz": {
//!     "seed": 1,
//!     "scenarios": 200,
//!     "executed": 200,
//!     "findings": [
//!       {"scenario": 1928, "class": "panic", "shrink_steps": 4}
//!     ]
//!   },
//!   "experiments": [
//!     {
//!       "id": "R-T1",
//!       "title": "power-gating circuit design space",
//!       "outcome": "ok",
//!       "attempts": 1,
//!       "wall_ms": 1.234,
//!       "metrics": {"counters": {"gates": 42}, "histograms": {}},
//!       "tables": [{"id": "R-T1", "rows": 7}]
//!     }
//!   ]
//! }
//! ```
//!
//! Schema history: v2 added the optional per-experiment `"metrics"`
//! object (aggregated observability counters and histograms); v3 added
//! the optional top-level `"fuzz"` object (differential-fuzz campaign
//! provenance: campaign seed, scenario count, and one
//! `{scenario, class, shrink_steps}` record per divergence), written by
//! `mapg-fuzz --manifest`; v4 added per-entry supervision fields
//! (`"outcome"`: `ok`/`panicked`/`timed-out`/`cancelled`, and
//! `"attempts"`) plus `"executed"` under `"fuzz"` (scenarios actually
//! run, which a `--max-seconds` budget can cap below `"scenarios"`).
//! Journaled (checkpoint/resume) runs zero every wall-time field so the
//! manifest is byte-identical between an uninterrupted run and a
//! kill-and-resume run; real wall times live in the journal.

use mapg_obs::MetricsRegistry;

use crate::fuzz::CampaignReport;
use crate::scale::Scale;
use crate::table::Table;

/// Schema version stamped into every manifest.
pub const MANIFEST_SCHEMA: u32 = 4;

/// Row counts of one rendered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSummary {
    /// Table id (e.g. `R-T1`).
    pub id: String,
    /// Number of data rows.
    pub rows: usize,
}

impl TableSummary {
    /// Summarizes a rendered table.
    pub fn of(table: &Table) -> Self {
        TableSummary {
            id: table.id().to_owned(),
            rows: table.rows().len(),
        }
    }
}

/// The record of one experiment within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Experiment id (e.g. `R-F5`).
    pub id: String,
    /// One-line experiment title.
    pub title: String,
    /// Supervision outcome: `ok`, `panicked`, `timed-out`, or
    /// `cancelled` (schema v4).
    pub outcome: String,
    /// Attempts the supervised run took (1 = no retry; schema v4).
    pub attempts: u32,
    /// Wall time of the experiment's `run` call, in milliseconds
    /// (zeroed in journaled runs for byte-stable resume).
    pub wall_ms: f64,
    /// Aggregated observability metrics across the experiment's
    /// simulations, when the run collected them.
    pub metrics: Option<MetricsRegistry>,
    /// Summaries of the tables the experiment produced.
    pub tables: Vec<TableSummary>,
}

/// One divergence of a fuzz campaign, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFindingSummary {
    /// Index of the diverging scenario within the campaign.
    pub scenario: u64,
    /// Finding class tag (e.g. `"panic"`, `"stats-mismatch"`).
    pub class: String,
    /// Shrink passes that were applied before the repro was written.
    pub shrink_steps: u64,
}

/// Provenance of a differential-fuzz campaign (schema v3).
///
/// Everything needed to regenerate the campaign — and to locate each
/// divergence inside it — without the repro files themselves: re-running
/// `mapg-fuzz --seed <seed> --scenarios <scenarios>` reproduces every
/// listed finding bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzProvenance {
    /// Seed the scenario stream was generated from.
    pub seed: u64,
    /// Scenarios the campaign was asked for.
    pub scenarios: u64,
    /// Scenarios actually executed (a `--max-seconds` wall-clock budget
    /// can stop the campaign short of `scenarios`; schema v4).
    pub executed: u64,
    /// Divergences, in scenario-index order (empty for a clean campaign).
    pub findings: Vec<FuzzFindingSummary>,
}

impl FuzzProvenance {
    /// Summarizes a finished campaign.
    pub fn of(report: &CampaignReport) -> Self {
        FuzzProvenance {
            seed: report.seed,
            scenarios: report.scenarios,
            executed: report.executed,
            findings: report
                .findings
                .iter()
                .map(|f| FuzzFindingSummary {
                    scenario: f.index,
                    class: f.outcome.finding.class.tag().to_owned(),
                    shrink_steps: f.outcome.steps,
                })
                .collect(),
        }
    }
}

/// A machine-readable record of one `experiments` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scale the run used.
    pub scale: Scale,
    /// Job count the run used (`--jobs`).
    pub jobs: usize,
    /// Wall time of the whole run, in milliseconds.
    pub total_wall_ms: f64,
    /// Fuzz-campaign provenance, when the run was an `mapg-fuzz`
    /// campaign. Campaign manifests carry no experiments and tag the
    /// `smoke` scale (the scale knob is an instruction budget, which
    /// randomized scenarios override); the authoritative campaign size
    /// is `fuzz.scenarios`.
    pub fuzz: Option<FuzzProvenance>,
    /// Per-experiment records, in registry order.
    pub experiments: Vec<ManifestEntry>,
}

impl Manifest {
    /// Renders the manifest as pretty-printed JSON (trailing newline
    /// included).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", MANIFEST_SCHEMA));
        out.push_str(&format!(
            "  \"scale\": {},\n",
            json_string(self.scale.name())
        ));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!(
            "  \"total_wall_ms\": {},\n",
            json_number(self.total_wall_ms)
        ));
        if let Some(fuzz) = &self.fuzz {
            out.push_str("  \"fuzz\": {\n");
            out.push_str(&format!("    \"seed\": {},\n", fuzz.seed));
            out.push_str(&format!("    \"scenarios\": {},\n", fuzz.scenarios));
            out.push_str(&format!("    \"executed\": {},\n", fuzz.executed));
            out.push_str("    \"findings\": [");
            for (i, finding) in fuzz.findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"scenario\": {}, \"class\": {}, \"shrink_steps\": {}}}",
                    finding.scenario,
                    json_string(&finding.class),
                    finding.shrink_steps
                ));
            }
            if !fuzz.findings.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]\n  },\n");
        }
        out.push_str("  \"experiments\": [");
        for (i, entry) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"id\": {},\n", json_string(&entry.id)));
            out.push_str(&format!(
                "      \"title\": {},\n",
                json_string(&entry.title)
            ));
            out.push_str(&format!(
                "      \"outcome\": {},\n",
                json_string(&entry.outcome)
            ));
            out.push_str(&format!("      \"attempts\": {},\n", entry.attempts));
            out.push_str(&format!(
                "      \"wall_ms\": {},\n",
                json_number(entry.wall_ms)
            ));
            if let Some(metrics) = &entry.metrics {
                out.push_str("      \"metrics\": {\n");
                out.push_str(&metrics.to_json_body("        "));
                out.push_str("      },\n");
            }
            out.push_str("      \"tables\": [");
            for (j, table) in entry.tables.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"id\": {}, \"rows\": {}}}",
                    json_string(&table.id),
                    table.rows
                ));
            }
            out.push_str("]\n    }");
        }
        if !self.experiments.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string per RFC 8259 and wraps it in quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite float as a JSON number with millisecond-precision
/// stability (3 fractional digits); non-finite values degrade to `0`.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            scale: Scale::Smoke,
            jobs: 4,
            total_wall_ms: 12.3456,
            fuzz: None,
            experiments: vec![
                ManifestEntry {
                    id: "R-T1".to_owned(),
                    title: "power-gating circuit design space".to_owned(),
                    outcome: "ok".to_owned(),
                    attempts: 1,
                    wall_ms: 1.5,
                    metrics: None,
                    tables: vec![TableSummary {
                        id: "R-T1".to_owned(),
                        rows: 7,
                    }],
                },
                ManifestEntry {
                    id: "R-F5".to_owned(),
                    title: "wake \"latency\" sweep".to_owned(),
                    outcome: "timed-out".to_owned(),
                    attempts: 3,
                    wall_ms: 2.25,
                    metrics: None,
                    tables: vec![
                        TableSummary {
                            id: "R-F5".to_owned(),
                            rows: 6,
                        },
                        TableSummary {
                            id: "R-F5b".to_owned(),
                            rows: 2,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn renders_the_documented_schema() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": 4"), "{json}");
        assert!(json.contains("\"scale\": \"smoke\""), "{json}");
        assert!(json.contains("\"jobs\": 4"), "{json}");
        assert!(json.contains("\"total_wall_ms\": 12.346"), "{json}");
        assert!(json.contains("\"id\": \"R-T1\""), "{json}");
        assert!(json.contains("\"outcome\": \"ok\""), "{json}");
        assert!(json.contains("\"outcome\": \"timed-out\""), "{json}");
        assert!(json.contains("\"attempts\": 1"), "{json}");
        assert!(json.contains("\"attempts\": 3"), "{json}");
        assert!(json.contains("{\"id\": \"R-F5b\", \"rows\": 2}"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let json = sample().to_json();
        assert!(json.contains(r#""wake \"latency\" sweep""#), "{json}");
        assert_eq!(json_string("a\\b\nc\t\u{1}"), "\"a\\\\b\\nc\\t\\u0001\"");
    }

    #[test]
    fn empty_run_is_valid_json() {
        let manifest = Manifest {
            scale: Scale::Paper,
            jobs: 1,
            total_wall_ms: 0.0,
            fuzz: None,
            experiments: Vec::new(),
        };
        assert!(manifest.to_json().contains("\"experiments\": []"));
    }

    /// Schema v3: fuzz provenance renders under `"fuzz"` with one record
    /// per divergence; manifests without a campaign omit the key.
    #[test]
    fn fuzz_provenance_embeds_under_the_manifest() {
        assert!(!sample().to_json().contains("\"fuzz\""));
        let mut manifest = sample();
        manifest.experiments.clear();
        manifest.fuzz = Some(FuzzProvenance {
            seed: 1,
            scenarios: 2000,
            executed: 1500,
            findings: vec![
                FuzzFindingSummary {
                    scenario: 1928,
                    class: "panic".to_owned(),
                    shrink_steps: 4,
                },
                FuzzFindingSummary {
                    scenario: 42,
                    class: "stats-mismatch".to_owned(),
                    shrink_steps: 0,
                },
            ],
        });
        let json = manifest.to_json();
        assert!(json.contains("\"seed\": 1"), "{json}");
        assert!(json.contains("\"scenarios\": 2000"), "{json}");
        assert!(
            json.contains("{\"scenario\": 1928, \"class\": \"panic\", \"shrink_steps\": 4}"),
            "{json}"
        );
        assert!(json.contains("\"stats-mismatch\""), "{json}");

        // A clean campaign still records its provenance.
        manifest.fuzz.as_mut().unwrap().findings.clear();
        let json = manifest.to_json();
        assert!(json.contains("\"findings\": []"), "{json}");
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(0.5), "0.500");
    }

    #[test]
    fn metrics_embed_under_the_entry() {
        let mut manifest = sample();
        let mut registry = MetricsRegistry::new();
        registry.count("gates", 42);
        registry.observe("gated_duration", 512);
        manifest.experiments[0].metrics = Some(registry);
        let json = manifest.to_json();
        assert!(json.contains("\"metrics\": {"), "{json}");
        assert!(json.contains("\"gates\": 42"), "{json}");
        assert!(json.contains("\"gated_duration\""), "{json}");
        // The entry without metrics stays metrics-free.
        assert_eq!(json.matches("\"metrics\": {").count(), 1, "{json}");
    }

    #[test]
    fn table_summary_counts_rows() {
        let mut t = Table::new("R-X", "x", vec!["a"]);
        t.push_row(vec!["1"]);
        t.push_row(vec!["2"]);
        let s = TableSummary::of(&t);
        assert_eq!(s.id, "R-X");
        assert_eq!(s.rows, 2);
    }
}
