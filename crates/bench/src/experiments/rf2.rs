//! R-F2 — Per-benchmark core-energy savings.
//!
//! The paper's main bar chart: for every workload, core-energy savings of
//! each policy relative to the no-gating baseline. Rows are workloads,
//! columns are policies — each column is one bar series.

use mapg::{PolicyKind, SuiteRunner};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let runner = SuiteRunner::new(suite_for(scale), base_config(scale));
    let matrix = runner.run(&PolicyKind::COMPARISON_SET);

    let policies: Vec<&str> = matrix
        .policies()
        .into_iter()
        .filter(|&p| p != "no-gating")
        .collect();
    let mut headers = vec!["workload".to_owned()];
    headers.extend(policies.iter().map(|p| p.to_string()));

    let mut table = Table::new(
        "R-F2",
        "core-energy savings vs no-gating (per workload)",
        headers,
    );
    for workload in matrix.workloads() {
        let baseline = matrix.get(workload, "no-gating").expect("baseline");
        let mut row = vec![workload.to_owned()];
        for policy in &policies {
            let report = matrix.get(workload, policy).expect("report");
            row.push(pct(report.core_energy_savings_vs(baseline)));
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_columns_for_all_policies() {
        let table = &run(Scale::Smoke)[0];
        assert!(table.headers().iter().any(|h| h == "mapg"));
        assert!(table.headers().iter().any(|h| h == "mapg-oracle"));
        assert!(!table.headers().iter().any(|h| h == "no-gating"));
    }

    #[test]
    fn mem_bound_mapg_savings_positive() {
        let table = &run(Scale::Smoke)[0];
        let cell = table.cell(0, "mapg").expect("cell");
        assert!(
            cell.starts_with('+'),
            "mem-bound MAPG savings should be positive: {cell}"
        );
    }
}
