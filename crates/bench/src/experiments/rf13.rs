//! R-F13 (extension) — Thermal feedback on leakage.
//!
//! Leakage rises with temperature and temperature rises with power, so a
//! gating policy's first-order savings buy a cooler die that leaks less
//! even while active — a second-order bonus. For each policy, this table
//! feeds the run's average dynamic and (reference-temperature) leakage
//! power into the steady-state thermal solver and reports the compounded
//! effect.

use mapg::{PolicyKind, RunReport, Simulation};
use mapg_power::{EnergyCategory, ThermalParams};
use mapg_units::Watts;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Splits a report's average core power into (dynamic-ish, leakage-ish)
/// components at the characterization temperature.
fn average_power_split(report: &RunReport) -> (Watts, Watts) {
    let runtime = report.runtime;
    let dynamic = (report.energy.get(EnergyCategory::ActiveDynamic)
        + report.energy.get(EnergyCategory::Transition))
        / runtime;
    let leakage = report.leakage_energy() / runtime;
    (dynamic, leakage)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let thermal = ThermalParams::embedded();
    let mut table = Table::new(
        "R-F13",
        "thermal feedback (mem_bound): steady state per policy",
        vec![
            "policy",
            "avg_dyn",
            "avg_leak_ref",
            "T_ss",
            "leak_scale",
            "P_total",
            "compounded_savings",
        ],
    );
    let policies = [
        PolicyKind::NoGating,
        PolicyKind::ClockGating,
        PolicyKind::Mapg,
        PolicyKind::MapgOracle,
    ];
    let mut baseline_power: Option<Watts> = None;
    for policy in policies {
        let report = Simulation::new(base_config(scale), policy).run();
        let (dynamic, leakage) = average_power_split(&report);
        let point = thermal
            .steady_state(dynamic, leakage)
            .expect("parameters are well inside stability");
        let baseline = *baseline_power.get_or_insert(point.total_power);
        table.push_row(vec![
            policy.name().to_owned(),
            format!("{dynamic}"),
            format!("{leakage}"),
            format!("{:.1} C", point.temperature_c),
            format!("{:.3}", point.leakage_scale),
            format!("{}", point.total_power),
            pct(1.0 - point.total_power / baseline),
        ]);
    }
    table.push_note(
        "compounded_savings includes the second-order effect: less power \
         -> cooler die -> lower leakage scale -> less power",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_runs_cooler_than_no_gating() {
        let table = &run(Scale::Smoke)[0];
        let temp = |i: usize| -> f64 {
            table
                .cell(i, "T_ss")
                .expect("cell")
                .trim_end_matches(" C")
                .parse()
                .expect("num")
        };
        // Rows: no-gating, clock-gating, mapg, mapg-oracle.
        assert!(temp(2) < temp(0), "mapg must run cooler than no-gating");
        assert!(temp(3) <= temp(2) + 0.5, "oracle at most marginally warmer");
    }

    #[test]
    fn leak_scale_tracks_temperature() {
        let table = &run(Scale::Smoke)[0];
        let scale_of = |i: usize| -> f64 {
            table
                .cell(i, "leak_scale")
                .expect("cell")
                .parse()
                .expect("num")
        };
        assert!(scale_of(2) < scale_of(0));
    }

    #[test]
    fn baseline_compounded_savings_is_zero() {
        let table = &run(Scale::Smoke)[0];
        assert_eq!(table.cell(0, "compounded_savings"), Some("+0.0%"));
    }
}
