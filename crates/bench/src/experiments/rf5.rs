//! R-F5 — Sensitivity to wake-up latency.
//!
//! Sweeps the sleep-transistor width ratio (which sets the wake-up latency
//! through the circuit model) and reports, for MAPG and the naive policy,
//! the savings and overhead on the memory-bound workload. Shows why the
//! paper's fast-wakeup circuit is load-bearing: slow wake-ups both shrink
//! the break-even window and push penalty onto the critical path.

use mapg::{PolicyKind, Simulation};
use mapg_power::{PgCircuitDesign, TechnologyParams};

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Width ratios swept (slowest to fastest wake).
pub const WIDTH_RATIOS: [f64; 6] = [0.005, 0.01, 0.02, 0.03, 0.08, 0.2];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let tech = TechnologyParams::bulk_45nm();
    let clock = tech.nominal_clock();
    let baseline = Simulation::new(base_config(scale), PolicyKind::NoGating).run();

    let mut table = Table::new(
        "R-F5",
        "wake-up latency sweep (mem_bound workload)",
        vec![
            "width%",
            "wake_cyc",
            "BET_cyc",
            "mapg_savings",
            "mapg_overhead",
            "naive_savings",
            "naive_overhead",
        ],
    );
    for &ratio in &WIDTH_RATIOS {
        let circuit = PgCircuitDesign::from_switch_width(ratio, &tech);
        let config = base_config(scale).with_switch_width(ratio);
        let mapg = Simulation::new(config.clone(), PolicyKind::Mapg).run();
        let naive = Simulation::new(config, PolicyKind::NaiveOnMiss).run();
        table.push_row(vec![
            format!("{:.1}", ratio * 100.0),
            circuit.wakeup_cycles(clock).raw().to_string(),
            circuit.break_even_cycles(&tech, clock).raw().to_string(),
            pct(mapg.core_energy_savings_vs(&baseline)),
            pct(mapg.perf_overhead_vs(&baseline)),
            pct(naive.core_energy_savings_vs(&baseline)),
            pct(naive.perf_overhead_vs(&baseline)),
        ]);
    }
    table.push_note(
        "early wake keeps MAPG overhead flat while naive overhead tracks \
         the wake latency",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn sweep_is_complete() {
        let table = &run(Scale::Smoke)[0];
        assert_eq!(table.rows().len(), WIDTH_RATIOS.len());
    }

    #[test]
    fn naive_overhead_shrinks_with_faster_wake() {
        let table = &run(Scale::Smoke)[0];
        let slow = parse_pct(table.cell(0, "naive_overhead").expect("c"));
        let fast = parse_pct(
            table
                .cell(WIDTH_RATIOS.len() - 1, "naive_overhead")
                .expect("c"),
        );
        assert!(
            fast <= slow,
            "faster wake must not increase naive overhead: {fast} vs {slow}"
        );
    }
}
