//! R-T1 — The power-gating circuit design space.
//!
//! Reconstructs the paper's circuit-characterization table: sweep the
//! sleep-transistor width ratio and report every figure of merit plus the
//! resulting break-even time. Pure circuit model, no simulation.

use mapg_power::{PgCircuitDesign, TechnologyParams};

use crate::scale::Scale;
use crate::table::Table;

/// Width ratios swept (1 % .. 20 %, bracketing the paper's fast-wakeup
/// point at 3 %).
pub const WIDTH_RATIOS: [f64; 8] = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2];

/// Runs the experiment.
pub fn run(_scale: Scale) -> Vec<Table> {
    let tech = TechnologyParams::bulk_45nm();
    let clock = tech.nominal_clock();
    let mut table = Table::new(
        "R-T1",
        "PG circuit design space (45 nm, 1.0 V, 2 GHz)",
        vec![
            "width%",
            "t_entry",
            "t_wake",
            "wake_cyc",
            "residual%",
            "E_trans",
            "area%",
            "I_rush",
            "BET_cyc",
        ],
    );
    for design in PgCircuitDesign::design_space(&tech, &WIDTH_RATIOS) {
        table.push_row(vec![
            format!("{:.1}", design.switch_width_ratio() * 100.0),
            format!("{:.1} ns", design.entry_time().as_nanos()),
            format!("{:.1} ns", design.wakeup_time().as_nanos()),
            design.wakeup_cycles(clock).raw().to_string(),
            format!("{:.1}", design.residual_leakage().as_percent()),
            format!("{:.1} nJ", design.transition_energy().as_joules() * 1e9),
            format!("{:.1}", design.area_overhead().as_percent()),
            format!("{}", design.rush_current()),
            design.break_even_cycles(&tech, clock).raw().to_string(),
        ]);
    }
    table.push_note(
        "MAPG design point: 3% width — wake hidden under a DRAM access, \
         break-even below one loaded round trip",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_ratios() {
        let tables = run(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows().len(), WIDTH_RATIOS.len());
    }

    #[test]
    fn wake_cycles_fall_with_width() {
        let table = &run(Scale::Smoke)[0];
        let wake: Vec<u64> = (0..table.rows().len())
            .map(|i| {
                table
                    .cell(i, "wake_cyc")
                    .expect("col")
                    .parse()
                    .expect("num")
            })
            .collect();
        for pair in wake.windows(2) {
            assert!(pair[0] >= pair[1], "wake cycles must fall: {wake:?}");
        }
    }
}
