//! R-F6 — Sensitivity to DRAM latency (the memory wall).
//!
//! Scales the DRAM core timing parameters from 0.5× to 4× and reports
//! MAPG's savings on the extremes. Longer memory latency means longer
//! stalls, more of them above the break-even time, and larger savings —
//! the trend that made memory-access gating increasingly attractive.

use mapg::{PolicyKind, Simulation};
use mapg_mem::{DramConfig, HierarchyConfig};

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// DRAM latency multipliers swept.
pub const LATENCY_SCALES: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 4.0];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "R-F6",
        "DRAM latency scaling (mem_bound workload)",
        vec![
            "dram_scale",
            "miss_avg",
            "stall%",
            "mapg_savings",
            "mapg_overhead",
            "gated%",
        ],
    );
    for &factor in &LATENCY_SCALES {
        let memory = HierarchyConfig {
            dram: DramConfig::ddr3_1333().with_latency_scaled(factor),
            ..HierarchyConfig::baseline()
        };
        let config = base_config(scale).with_memory(memory);
        let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let mapg = Simulation::new(config, PolicyKind::Mapg).run();
        table.push_row(vec![
            format!("{factor:.1}x"),
            baseline.memory.miss_latency.mean().to_string(),
            format!("{:.1}", baseline.stall_fraction() * 100.0),
            pct(mapg.core_energy_savings_vs(&baseline)),
            pct(mapg.perf_overhead_vs(&baseline)),
            format!("{:.1}", mapg.gating.gated_fraction() * 100.0),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn savings_grow_with_memory_latency() {
        let table = &run(Scale::Smoke)[0];
        let first = parse_pct(table.cell(0, "mapg_savings").expect("cell"));
        let last = parse_pct(
            table
                .cell(LATENCY_SCALES.len() - 1, "mapg_savings")
                .expect("cell"),
        );
        assert!(
            last > first,
            "4x DRAM latency should increase savings: {first} -> {last}"
        );
    }

    #[test]
    fn stall_fraction_grows_with_latency() {
        let table = &run(Scale::Smoke)[0];
        let first: f64 = table.cell(0, "stall%").expect("cell").parse().expect("num");
        let last: f64 = table
            .cell(LATENCY_SCALES.len() - 1, "stall%")
            .expect("cell")
            .parse()
            .expect("num");
        assert!(last > first);
    }
}
