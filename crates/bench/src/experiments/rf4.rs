//! R-F4 — Sensitivity to the break-even threshold.
//!
//! Sweeps the policy's break-even guard multiplier (effective gating
//! threshold = guard × BET) on a memory-bound and a compute-bound workload.
//! Low thresholds over-gate (transition energy on short stalls); high
//! thresholds leave long stalls unharvested. The figure locates the knee.

use mapg::{Controller, ControllerConfig, PolicyKind, RunReport, SimConfig, Simulation};
use mapg_cpu::{Cluster, CoreConfig};
use mapg_mem::HierarchyConfig;
use mapg_power::{DramEnergyModel, EnergyCategory};
use mapg_trace::{SyntheticWorkload, WorkloadProfile};
use mapg_units::{Cycle, Cycles};

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Guard multipliers swept.
pub const GUARDS: [f64; 7] = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Runs a MAPG simulation with a custom guard. The [`Simulation`] facade
/// only exposes [`PolicyKind`]s, so this experiment assembles the pieces
/// directly — which doubles as a living example of the lower-level API.
fn run_with_guard(profile: &WorkloadProfile, instructions: u64, guard: f64) -> RunReport {
    let policy = mapg::MapgPolicy::predictive().with_guard(guard);
    let config = ControllerConfig::baseline();
    let mut controller = Controller::new(Box::new(policy), config);
    let sources = vec![SyntheticWorkload::new(profile, 42)];
    let mut cluster = Cluster::new(CoreConfig::baseline(), HierarchyConfig::baseline(), sources);
    cluster.run(instructions, &mut controller);
    let stats = cluster.stats();
    controller.finish(
        &stats
            .per_core
            .iter()
            .map(|c| Cycle::new(c.total_cycles))
            .collect::<Vec<_>>(),
    );

    let mut energy = controller.energy().clone();
    let clock = CoreConfig::baseline().clock;
    for core in &stats.per_core {
        let active = Cycles::new(core.active_cycles()).at(clock);
        energy.add(
            EnergyCategory::ActiveDynamic,
            config.tech.dynamic_power() * active,
        );
        energy.add(
            EnergyCategory::ActiveLeakage,
            config.tech.leakage_power() * active,
        );
    }
    let runtime = Cycles::new(stats.makespan_cycles()).at(clock);
    let dram = DramEnergyModel::ddr3();
    energy.add(
        EnergyCategory::DramAccess,
        dram.access_energy(&stats.memory.dram),
    );
    energy.add(
        EnergyCategory::DramBackground,
        dram.background_power * runtime,
    );

    RunReport {
        policy: "mapg-guarded",
        workload: profile.name().to_owned(),
        cores: 1,
        instructions: stats.total_instructions(),
        makespan_cycles: stats.makespan_cycles(),
        runtime,
        energy,
        gating: *controller.stats(),
        predictor: controller.policy().predictor_score().cloned(),
        core_stats: stats.per_core,
        memory: stats.memory,
        peak_concurrent_wakes: 0,
        invariants: controller.invariants(),
        degradation: controller.degradation(),
        faults: controller.fault_stats(),
        timeline: None,
        trace: None,
        metrics: None,
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let instructions = scale.instructions();
    let profiles = [
        WorkloadProfile::mem_bound("mem_bound"),
        WorkloadProfile::compute_bound("compute_bound"),
    ];
    let mut tables = Vec::new();
    for profile in &profiles {
        let base: SimConfig = base_config(scale).with_profile(profile.clone());
        let baseline = Simulation::new(base, PolicyKind::NoGating).run();
        let mut table = Table::new(
            "R-F4",
            format!("break-even guard sweep — {}", profile.name()),
            vec![
                "guard×BET",
                "gated%",
                "core_E_savings",
                "perf_overhead",
                "EDP_delta",
            ],
        );
        for &guard in &GUARDS {
            let report = run_with_guard(profile, instructions, guard);
            table.push_row(vec![
                format!("{guard:.2}"),
                format!("{:.1}", report.gating.gated_fraction() * 100.0),
                pct(report.core_energy_savings_vs(&baseline)),
                pct(report.perf_overhead_vs(&baseline)),
                pct(report.edp_delta_vs(&baseline)),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tables_one_per_extreme() {
        let tables = run(Scale::Smoke);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.rows().len(), GUARDS.len());
        }
    }

    #[test]
    fn higher_guard_gates_less() {
        let tables = run(Scale::Smoke);
        let gated = |t: &Table, i: usize| -> f64 {
            t.cell(i, "gated%").expect("cell").parse().expect("num")
        };
        let mem = &tables[0];
        let first = gated(mem, 0);
        let last = gated(mem, GUARDS.len() - 1);
        assert!(
            first >= last,
            "guard 0 must gate at least as much as guard 8: {first} vs {last}"
        );
    }
}
