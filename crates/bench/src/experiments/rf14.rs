//! R-F14 (extension) — MAPG vs an interval-based memory-aware DVFS
//! governor.
//!
//! Per-stall DVFS is physically impossible (R-T3's idealized bound), but
//! *interval*-granularity DVFS — downclock during memory-bound phases — was
//! the era's deployable alternative. This experiment pits measured MAPG
//! runs against the analytic best case of such a governor (perfect phase
//! detection, free transitions; see
//! [`OperatingPoint::estimate_interval_governor`]).

use mapg::{PolicyKind, Simulation};
use mapg_power::{OperatingPoint, PgCircuitDesign, TechnologyParams};
use mapg_trace::WorkloadProfile;
use mapg_units::Cycles;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let tech = TechnologyParams::bulk_45nm();
    let mut table = Table::new(
        "R-F14",
        "MAPG vs idealized interval DVFS governor",
        vec![
            "workload",
            "scheme",
            "runtime_delta",
            "core_E_savings",
            "EDP_delta",
        ],
    );
    for profile in [
        WorkloadProfile::mem_bound("mem_bound"),
        WorkloadProfile::compute_bound("compute_bound"),
    ] {
        let config = base_config(scale).with_profile(profile.clone());
        let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let clock = tech.nominal_clock();
        let core = &baseline.core_stats[0];
        let active = Cycles::new(core.active_cycles()).at(clock);
        let stalled = Cycles::new(core.stall_cycles).at(clock);
        // The comparable baseline burns clock-gated stalls (leakage only),
        // i.e. the nominal-point governor estimate.
        let (base_runtime, base_energy) =
            OperatingPoint::nominal().estimate_interval_governor(&tech, active, stalled);
        let base_edp = base_energy * base_runtime;

        for point in [OperatingPoint::low(), OperatingPoint::min()] {
            let (runtime, energy) = point.estimate_interval_governor(&tech, active, stalled);
            table.push_row(vec![
                profile.name().to_owned(),
                format!("dvfs@{}", point.name()),
                pct(runtime / base_runtime - 1.0),
                pct(1.0 - energy / base_energy),
                pct((energy * runtime) / base_edp - 1.0),
            ]);
        }

        // Measured MAPG, re-normalized to the same clock-gated baseline.
        let clock_gated = Simulation::new(config.clone(), PolicyKind::ClockGating).run();
        let mapg = Simulation::new(config, PolicyKind::Mapg).run();
        table.push_row(vec![
            profile.name().to_owned(),
            "mapg (measured)".to_owned(),
            pct(mapg.perf_overhead_vs(&clock_gated)),
            pct(mapg.core_energy_savings_vs(&clock_gated)),
            pct(mapg.edp_delta_vs(&clock_gated)),
        ]);

        // The techniques compose: gate the stalls AND downclock the active
        // phases. Analytic estimate — the governor's stretched runtime,
        // with the stall leakage term replaced by MAPG's gated residual
        // plus per-stall transition energy.
        let circuit = PgCircuitDesign::fast_wakeup(&tech);
        let point = OperatingPoint::min();
        let f_ratio = point.frequency() / tech.nominal_clock();
        let v_ratio = point.voltage() / tech.vdd();
        let stretched_active = active / f_ratio;
        let runtime = stretched_active + stalled;
        let energy = tech.dynamic_power() * (v_ratio * v_ratio) * active
            + tech.leakage_power() * (v_ratio * v_ratio * v_ratio) * stretched_active
            + circuit.gated_power(&tech) * stalled
            + circuit.transition_energy() * baseline.gating.stalls as f64;
        table.push_row(vec![
            profile.name().to_owned(),
            "mapg+dvfs@min (est)".to_owned(),
            pct(runtime / base_runtime - 1.0),
            pct(1.0 - energy / base_energy),
            pct((energy * runtime) / base_edp - 1.0),
        ]);
    }
    table.push_note(
        "DVFS rows are analytic best cases (perfect phases, free \
         transitions) against a clock-gated baseline; MAPG rows are \
         measured against the clock-gating run",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    fn row_of(table: &Table, workload: &str, scheme: &str) -> usize {
        (0..table.rows().len())
            .find(|&i| {
                table.cell(i, "workload") == Some(workload)
                    && table.cell(i, "scheme") == Some(scheme)
            })
            .unwrap_or_else(|| panic!("missing row {workload}/{scheme}"))
    }

    #[test]
    fn mapg_preserves_performance_where_dvfs_cannot() {
        let table = &run(Scale::Smoke)[0];
        let mapg = row_of(table, "mem_bound", "mapg (measured)");
        let dvfs = row_of(table, "mem_bound", "dvfs@min");
        let mapg_rt = parse_pct(table.cell(mapg, "runtime_delta").expect("c"));
        let dvfs_rt = parse_pct(table.cell(dvfs, "runtime_delta").expect("c"));
        assert!(
            mapg_rt < dvfs_rt / 2.0,
            "MAPG runtime {mapg_rt}% must be far under DVFS {dvfs_rt}%"
        );
    }

    #[test]
    fn combined_scheme_beats_both_constituents_on_memory_bound() {
        let table = &run(Scale::Smoke)[0];
        let edp = |scheme: &str| {
            let row = row_of(table, "mem_bound", scheme);
            parse_pct(table.cell(row, "EDP_delta").expect("c"))
        };
        let combined = edp("mapg+dvfs@min (est)");
        assert!(combined <= edp("dvfs@min") + 0.5);
        assert!(combined <= edp("mapg (measured)") + 0.5);
    }

    #[test]
    fn dvfs_cheap_on_memory_bound_expensive_on_compute_bound() {
        let table = &run(Scale::Smoke)[0];
        let mem = row_of(table, "mem_bound", "dvfs@min");
        let cpu = row_of(table, "compute_bound", "dvfs@min");
        let mem_rt = parse_pct(table.cell(mem, "runtime_delta").expect("c"));
        let cpu_rt = parse_pct(table.cell(cpu, "runtime_delta").expect("c"));
        assert!(
            cpu_rt > mem_rt + 20.0,
            "downclocking must hurt compute-bound far more: {cpu_rt} vs {mem_rt}"
        );
    }
}
