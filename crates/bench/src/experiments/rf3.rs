//! R-F3 — Per-benchmark performance overhead.
//!
//! Companion figure to R-F2: runtime increase of each policy relative to
//! the no-gating baseline. MAPG's claim is that early-wake scheduling keeps
//! this near zero where the naive and timeout policies pay the full wake
//! latency per gated stall.

use mapg::{PolicyKind, SuiteRunner};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let runner = SuiteRunner::new(suite_for(scale), base_config(scale));
    let matrix = runner.run(&PolicyKind::COMPARISON_SET);

    let policies: Vec<&str> = matrix
        .policies()
        .into_iter()
        .filter(|&p| p != "no-gating")
        .collect();
    let mut headers = vec!["workload".to_owned()];
    headers.extend(policies.iter().map(|p| p.to_string()));

    let mut table = Table::new(
        "R-F3",
        "runtime overhead vs no-gating (per workload)",
        headers,
    );
    for workload in matrix.workloads() {
        let baseline = matrix.get(workload, "no-gating").expect("baseline");
        let mut row = vec![workload.to_owned()];
        for policy in &policies {
            let report = matrix.get(workload, policy).expect("report");
            row.push(pct(report.perf_overhead_vs(baseline)));
        }
        table.push_row(row);
    }
    table.push_note("positive = slower than no-gating");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overhead(table: &Table, row: usize, policy: &str) -> f64 {
        table
            .cell(row, policy)
            .expect("cell")
            .trim_end_matches('%')
            .parse()
            .expect("num")
    }

    #[test]
    fn mapg_overhead_below_naive() {
        let table = &run(Scale::Smoke)[0];
        for row in 0..table.rows().len() {
            let mapg = overhead(table, row, "mapg");
            let naive = overhead(table, row, "naive-on-miss");
            assert!(
                mapg <= naive + 0.2,
                "row {row}: mapg {mapg}% vs naive {naive}%"
            );
        }
    }

    #[test]
    fn zero_latency_policies_have_zero_overhead() {
        let table = &run(Scale::Smoke)[0];
        for row in 0..table.rows().len() {
            assert_eq!(overhead(table, row, "clock-gating"), 0.0);
            assert_eq!(overhead(table, row, "dvfs-stall"), 0.0);
        }
    }
}
