//! R-F7 — Predictor comparison.
//!
//! Runs MAPG with each miss-latency predictor on the suite and reports
//! prediction accuracy (fraction within ±25 %, mean absolute error) and
//! the end-to-end consequences (savings, overhead). Shows the gap each
//! predictor leaves to the oracle.

use mapg::{geometric_mean, PolicyKind, PredictorKind, SuiteRunner};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut policies = vec![PolicyKind::NoGating];
    policies.extend(
        PredictorKind::ALL
            .into_iter()
            .map(|predictor| PolicyKind::MapgWith { predictor }),
    );
    let runner = SuiteRunner::new(suite_for(scale), base_config(scale));
    let matrix = runner.run(&policies);

    let mut table = Table::new(
        "R-F7",
        "predictor comparison, geomean across suite",
        vec![
            "predictor",
            "within25%",
            "MAE_cyc",
            "core_E_savings",
            "perf_overhead",
        ],
    );
    for predictor in PredictorKind::ALL {
        let name = predictor.policy_name();
        let workloads = matrix.workloads();
        let mut within = 0.0f64;
        let mut mae = 0.0f64;
        let mut n = 0.0f64;
        for w in &workloads {
            if let Some(score) = matrix
                .get(w, name)
                .and_then(|r| r.predictor.as_ref())
                .filter(|s| s.predictions() > 0)
            {
                within += score.accuracy();
                mae += score.mean_abs_error();
                n += 1.0;
            }
        }
        let savings = 1.0 - matrix.geomean_normalized_energy(name, "no-gating");
        let overhead = geometric_mean(workloads.iter().map(|w| {
            let p = matrix.get(w, name).expect("report");
            let b = matrix.get(w, "no-gating").expect("baseline");
            p.makespan_cycles as f64 / b.makespan_cycles as f64
        })) - 1.0;
        table.push_row(vec![
            name.to_owned(),
            format!("{:.1}%", within / n.max(1.0) * 100.0),
            format!("{:.0}", mae / n.max(1.0)),
            pct(savings),
            pct(overhead),
        ]);
    }
    table.push_note("the oracle row is the upper bound (perfect prediction)");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn all_predictors_present() {
        let table = &run(Scale::Smoke)[0];
        assert_eq!(table.rows().len(), PredictorKind::ALL.len());
    }

    #[test]
    fn oracle_is_perfectly_accurate() {
        let table = &run(Scale::Smoke)[0];
        let oracle_row = (0..table.rows().len())
            .find(|&i| table.cell(i, "predictor") == Some("mapg+oracle"))
            .expect("oracle row");
        let accuracy = parse_pct(table.cell(oracle_row, "within25%").expect("cell"));
        assert!((accuracy - 100.0).abs() < 1e-6);
        let mae: f64 = table
            .cell(oracle_row, "MAE_cyc")
            .expect("cell")
            .parse()
            .expect("num");
        assert_eq!(mae, 0.0);
    }

    #[test]
    fn oracle_savings_at_least_static() {
        let table = &run(Scale::Smoke)[0];
        let savings = |name: &str| -> f64 {
            let row = (0..table.rows().len())
                .find(|&i| table.cell(i, "predictor") == Some(name))
                .expect("row");
            parse_pct(table.cell(row, "core_E_savings").expect("cell"))
        };
        assert!(savings("mapg+oracle") + 0.5 >= savings("mapg+static"));
    }
}
