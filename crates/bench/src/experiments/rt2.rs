//! R-T2 — Workload characterization.
//!
//! Runs every suite profile without power management and reports the
//! architectural quantities that determine gating opportunity: IPC, LLC
//! MPKI, memory-stall fraction, miss-latency distribution and DRAM
//! row-buffer behaviour.

use mapg::{PolicyKind, Simulation};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::Table;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let suite = suite_for(scale);
    let mut table = Table::new(
        "R-T2",
        "workload characterization (no power management)",
        vec![
            "workload",
            "IPC",
            "LLC_MPKI",
            "stall%",
            "mlp%",
            "dep%",
            "miss_avg",
            "miss_p95",
            "rowhit%",
            "stalls/Mi",
        ],
    );
    for profile in suite.iter() {
        let config = base_config(scale).with_profile(profile.clone());
        let report = Simulation::new(config, PolicyKind::NoGating).run();
        let stalls_per_mi = report.gating.stalls as f64 * 1e6 / report.instructions as f64;
        let core = &report.core_stats[0];
        let share = |cycles: u64| {
            if core.stall_cycles == 0 {
                0.0
            } else {
                cycles as f64 * 100.0 / core.stall_cycles as f64
            }
        };
        table.push_row(vec![
            profile.name().to_owned(),
            format!("{:.2}", report.ipc()),
            format!("{:.1}", report.memory.llc_mpki(report.instructions)),
            format!("{:.1}", report.stall_fraction() * 100.0),
            format!("{:.0}", share(core.mlp_stall_cycles)),
            format!("{:.0}", share(core.dependency_stall_cycles)),
            report.memory.miss_latency.mean().to_string(),
            report.memory.miss_latency.percentile(0.95).to_string(),
            format!("{:.1}", report.memory.dram.row_hit_rate() * 100.0),
            format!("{stalls_per_mi:.0}"),
        ]);
    }
    table.push_note(
        "stand-in profiles tuned to published SPEC CPU2006 MPKI ranges; \
         see DESIGN.md §2",
    );
    table.push_note(
        "mlp%/dep% split the stall cycles by cause: MLP-limit waits vs \
         dependent (pointer-chase) waits",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterizes_every_profile() {
        let tables = run(Scale::Smoke);
        assert_eq!(tables[0].rows().len(), 2, "extremes suite at smoke");
    }

    #[test]
    fn mem_bound_stalls_more_than_compute_bound() {
        let table = &run(Scale::Smoke)[0];
        let stall =
            |i: usize| -> f64 { table.cell(i, "stall%").expect("col").parse().expect("num") };
        assert!(stall(0) > stall(1), "mem_bound first in extremes suite");
    }
}
