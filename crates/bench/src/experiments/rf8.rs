//! R-F8 — Many-core scaling with wake tokens.
//!
//! Part 1: scale the core count (shared DRAM) and watch MAPG's savings and
//! overhead. Part 2: at a fixed core count, sweep the wake-token budget —
//! fewer tokens bound the worst-case rush current (peak concurrent wakes)
//! at the price of token-wait penalty. The TAP companion trade-off.

use mapg::{PolicyKind, Simulation};
use mapg_power::{PgCircuitDesign, TechnologyParams};
use mapg_trace::WorkloadProfile;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// A moderated memory-bound profile: at 8–16 cores the full-intensity
/// profile saturates the single DRAM channel so completely (>98 % stall)
/// that makespans become noise-dominated; 40 % intensity keeps the channel
/// loaded but below saturation, so the token trade-off is measurable.
fn multicore_profile() -> WorkloadProfile {
    WorkloadProfile::mem_bound("mem_bound_mc").with_mem_intensity_scaled(0.4)
}

/// Core counts swept in part 1.
pub const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Token budgets swept in part 2 (at 8 cores). `usize::MAX` encodes
/// "unlimited".
pub const TOKEN_BUDGETS: [usize; 4] = [usize::MAX, 4, 2, 1];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    // Many-core runs multiply work; shrink the per-core budget.
    let per_core = (scale.instructions() / 4).max(10_000);

    let mut scaling = Table::new(
        "R-F8a",
        "core-count scaling (mem_bound, shared DRAM, no tokens)",
        vec![
            "cores",
            "stall%",
            "mapg_savings",
            "mapg_overhead",
            "miss_avg",
        ],
    );
    for &cores in &CORE_COUNTS {
        let config = base_config(scale)
            .with_profile(multicore_profile())
            .with_instructions(per_core)
            .with_cores(cores);
        let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let mapg = Simulation::new(config, PolicyKind::Mapg).run();
        scaling.push_row(vec![
            cores.to_string(),
            format!("{:.1}", baseline.stall_fraction() * 100.0),
            pct(mapg.core_energy_savings_vs(&baseline)),
            pct(mapg.perf_overhead_vs(&baseline)),
            baseline.memory.miss_latency.mean().to_string(),
        ]);
    }

    let tech = TechnologyParams::bulk_45nm();
    let per_core_rush = PgCircuitDesign::fast_wakeup(&tech).rush_current();
    let mut tokens = Table::new(
        "R-F8b",
        "wake-token budget sweep (8 cores, mem_bound)",
        vec![
            "tokens",
            "peak_wakes",
            "peak_rush",
            "token_delay_cyc",
            "mapg_savings",
            "mapg_overhead",
        ],
    );
    let base8 = base_config(scale)
        .with_profile(multicore_profile())
        .with_instructions(per_core)
        .with_cores(8);
    let baseline8 = Simulation::new(base8.clone(), PolicyKind::NoGating).run();
    for &budget in &TOKEN_BUDGETS {
        let config = if budget == usize::MAX {
            base8.clone().with_tokens(64) // effectively unlimited for 8 cores
        } else {
            base8.clone().with_tokens(budget)
        };
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        let label = if budget == usize::MAX {
            "inf".to_owned()
        } else {
            budget.to_string()
        };
        let peak = report.peak_concurrent_wakes;
        tokens.push_row(vec![
            label,
            peak.to_string(),
            format!("{}", per_core_rush * peak as f64),
            report.gating.token_delay_cycles.to_string(),
            pct(report.core_energy_savings_vs(&baseline8)),
            pct(report.perf_overhead_vs(&baseline8)),
        ]);
    }
    tokens.push_note(
        "peak_rush = peak concurrent wakes × per-core inrush; the di/dt \
         budget the token count enforces",
    );
    vec![scaling, tokens]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_parts_produced() {
        let tables = run(Scale::Smoke);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows().len(), CORE_COUNTS.len());
        assert_eq!(tables[1].rows().len(), TOKEN_BUDGETS.len());
    }

    #[test]
    fn token_budget_caps_peak_wakes() {
        let tables = run(Scale::Smoke);
        let tokens = &tables[1];
        for (i, &budget) in TOKEN_BUDGETS.iter().enumerate() {
            if budget == usize::MAX {
                continue;
            }
            let peak: usize = tokens
                .cell(i, "peak_wakes")
                .expect("cell")
                .parse()
                .expect("num");
            assert!(peak <= budget, "budget {budget} violated with peak {peak}");
        }
    }
}
