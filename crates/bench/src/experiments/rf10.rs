//! R-F10 — Ablations of MAPG's two mechanisms.
//!
//! Compares full MAPG against three ablations on the suite:
//!
//! - `mapg-no-early-wake`: keep the break-even guard, wake reactively;
//!   isolates what the wake-scheduling mechanism buys (runtime).
//! - `mapg-always-gate`: keep early wake, drop the guard; isolates what
//!   the break-even comparison buys (energy on short stalls).
//! - `naive-on-miss`: drop both.

use mapg::{PolicyKind, Simulation, SuiteRunner};
use mapg_mem::{DramConfig, HierarchyConfig};
use mapg_trace::WorkloadProfile;

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::{ratio, Table};

/// The ablation set.
pub const ABLATIONS: [PolicyKind; 5] = [
    PolicyKind::NoGating,
    PolicyKind::Mapg,
    PolicyKind::MapgNoEarlyWake,
    PolicyKind::MapgAlwaysGate,
    PolicyKind::NaiveOnMiss,
];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let runner = SuiteRunner::new(suite_for(scale), base_config(scale));
    let matrix = runner.run(&ABLATIONS);

    let mut table = Table::new(
        "R-F10",
        "mechanism ablations, geomean across suite (vs no-gating)",
        vec!["variant", "norm_core_E", "norm_runtime", "norm_EDP"],
    );
    for policy in matrix.policies() {
        if policy == "no-gating" {
            continue;
        }
        table.push_row(vec![
            policy.to_owned(),
            ratio(matrix.geomean_normalized_energy(policy, "no-gating")),
            ratio(matrix.geomean_normalized_runtime(policy, "no-gating")),
            ratio(matrix.geomean_normalized_edp(policy, "no-gating")),
        ]);
    }
    table.push_note(
        "early wake buys runtime; the break-even guard buys energy — full \
         MAPG needs both",
    );

    // On the regular suite nearly every stall clears the break-even time,
    // so the guard barely discriminates. The second table runs the same
    // ablations where stalls sit *near* the break-even boundary (fast
    // 0.4x-latency memory), which is where the guard earns its keep.
    let marginal_profile = WorkloadProfile::builder("marginal_stalls")
        .mem_refs_per_kilo_inst(90.0)
        .working_set_bytes(128 << 20)
        .spatial_locality(0.5)
        .hot_regions(8)
        .pointer_chase_fraction(0.1)
        .compute_ipc(2.0)
        .build();
    let fast_memory = HierarchyConfig {
        dram: DramConfig::ddr3_1333().with_latency_scaled(0.4),
        ..HierarchyConfig::baseline()
    };
    let marginal_config = base_config(scale)
        .with_profile(marginal_profile)
        .with_memory(fast_memory);
    let marginal_baseline = Simulation::new(marginal_config.clone(), PolicyKind::NoGating).run();
    let mut marginal = Table::new(
        "R-F10b",
        "ablations near the break-even boundary (0.4x DRAM latency)",
        vec![
            "variant",
            "gated%",
            "norm_core_E",
            "norm_runtime",
            "norm_EDP",
        ],
    );
    for policy in ABLATIONS.into_iter().skip(1) {
        let report = Simulation::new(marginal_config.clone(), policy).run();
        marginal.push_row(vec![
            policy.name().to_owned(),
            format!("{:.1}", report.gating.gated_fraction() * 100.0),
            ratio(report.core_energy() / marginal_baseline.core_energy()),
            ratio(report.makespan_cycles as f64 / marginal_baseline.makespan_cycles as f64),
            ratio(report.edp() / marginal_baseline.edp()),
        ]);
    }

    // Third mechanism: nap chaining (re-gate after an early wake).
    let no_regate = Simulation::new(marginal_config.without_regate(), PolicyKind::Mapg).run();
    marginal.push_row(vec![
        "mapg-no-regate".to_owned(),
        format!("{:.1}", no_regate.gating.gated_fraction() * 100.0),
        ratio(no_regate.core_energy() / marginal_baseline.core_energy()),
        ratio(no_regate.makespan_cycles as f64 / marginal_baseline.makespan_cycles as f64),
        ratio(no_regate.edp() / marginal_baseline.edp()),
    ]);
    vec![table, marginal]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(table: &Table, variant: &str, col: &str) -> f64 {
        let row = (0..table.rows().len())
            .find(|&i| table.cell(i, "variant") == Some(variant))
            .unwrap_or_else(|| panic!("missing variant {variant}"));
        table.cell(row, col).expect("cell").parse().expect("num")
    }

    #[test]
    fn early_wake_buys_runtime() {
        let table = &run(Scale::Smoke)[0];
        let with_wake = value(table, "mapg", "norm_runtime");
        let without = value(table, "mapg-no-early-wake", "norm_runtime");
        assert!(
            with_wake <= without + 1e-6,
            "early wake must not be slower: {with_wake} vs {without}"
        );
    }

    #[test]
    fn full_mapg_has_best_edp_among_ablations() {
        let table = &run(Scale::Smoke)[0];
        let full = value(table, "mapg", "norm_EDP");
        for variant in ["mapg-no-early-wake", "mapg-always-gate", "naive-on-miss"] {
            let ablated = value(table, variant, "norm_EDP");
            assert!(
                full <= ablated + 0.02,
                "{variant} EDP {ablated} beat full MAPG {full}"
            );
        }
    }
}
