//! R-F16 — Graceful degradation under fault injection.
//!
//! Sweeps a fault-intensity multiplier over the moderate [`FaultPlan`]
//! (0 = fault-free, 2 = heavy) and compares, at each point: MAPG with the
//! safe-mode watchdog, MAPG without it, and the naive reactive-wake
//! baseline. Savings and overhead are measured against a no-gating run of
//! the *same* faulty environment, so the DRAM spikes hit every policy
//! equally and the deltas isolate the gating stack's response.
//!
//! The figure this reconstructs: as faults intensify, naive gating and
//! unguarded MAPG bleed performance on slow wakes, dropped tokens and
//! brownout vetoes, while the watchdog detects the regime, demotes power
//! gating to clock gating, and periodically re-arms to probe for recovery —
//! keeping worst-case overhead bounded at the cost of some energy savings.

use mapg::{FaultPlan, PolicyKind, RunReport, SimConfig, Simulation};
use mapg_trace::WorkloadProfile;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Intensity multipliers applied to [`FaultPlan::moderate`].
pub const INTENSITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// The gating configurations compared at each intensity.
const VARIANTS: [(&str, PolicyKind, bool); 3] = [
    ("mapg+watchdog", PolicyKind::Mapg, true),
    ("mapg", PolicyKind::Mapg, false),
    ("naive", PolicyKind::NaiveOnMiss, false),
];

/// The shared run configuration: two memory-bound cores contending for the
/// DRAM channel with a 2-token wake budget, so every fault class (slow
/// wakes, dropped grants, brownout vetoes, DRAM spikes, corrupt samples)
/// has a target.
fn faulty_config(scale: Scale, intensity: f64) -> SimConfig {
    base_config(scale)
        .with_profile(WorkloadProfile::mem_bound("mem_bound"))
        .with_instructions((scale.instructions() / 2).max(20_000))
        .with_cores(2)
        .with_tokens(2)
        .with_fault_plan(FaultPlan::moderate().with_intensity(intensity))
}

fn run_variant(scale: Scale, intensity: f64, policy: PolicyKind, watchdog: bool) -> RunReport {
    let mut config = faulty_config(scale, intensity);
    if watchdog {
        config = config.with_safe_mode_default();
    }
    Simulation::new(config, policy).run()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "R-F16",
        "fault-intensity sweep: graceful degradation via safe mode",
        vec![
            "intensity",
            "policy",
            "core_E_savings",
            "perf_overhead",
            "faults",
            "violations",
            "wd_entries",
            "wd_recoveries",
            "demoted",
        ],
    );
    for &intensity in &INTENSITIES {
        let baseline = Simulation::new(faulty_config(scale, intensity), PolicyKind::NoGating).run();
        for &(label, policy, watchdog) in &VARIANTS {
            let report = run_variant(scale, intensity, policy, watchdog);
            table.push_row(vec![
                format!("{intensity:.1}"),
                label.to_owned(),
                pct(report.core_energy_savings_vs(&baseline)),
                pct(report.perf_overhead_vs(&baseline)),
                (report.faults.total() + report.memory.dram.fault_spikes).to_string(),
                report.invariants.total_violations.to_string(),
                report.degradation.safe_mode_entries.to_string(),
                report.degradation.recoveries.to_string(),
                report.degradation.demoted_gates.to_string(),
            ]);
        }
    }
    table.push_note(
        "savings/overhead vs a no-gating run of the same faulty \
         environment; violations are runtime invariant-check failures \
         (must be 0)",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_variant_and_intensity() {
        let tables = run(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows().len(), INTENSITIES.len() * VARIANTS.len());
    }

    #[test]
    fn no_run_breaks_an_invariant() {
        let tables = run(Scale::Smoke);
        for (i, row) in tables[0].rows().iter().enumerate() {
            let violations = tables[0]
                .cell(i, "violations")
                .expect("cell")
                .parse::<u64>()
                .expect("num");
            assert_eq!(violations, 0, "row {i}: {row:?}");
        }
    }

    #[test]
    fn watchdog_bounds_overhead_under_heavy_faults() {
        let scale = Scale::Smoke;
        let intensity = 2.0;
        let guarded = run_variant(scale, intensity, PolicyKind::Mapg, true);
        let unguarded = run_variant(scale, intensity, PolicyKind::Mapg, false);
        assert!(
            guarded.degradation.safe_mode_entries > 0,
            "heavy faults must trip the watchdog: {}",
            guarded.degradation
        );
        assert!(
            guarded.degradation.recoveries > 0,
            "the watchdog must re-arm to probe for recovery: {}",
            guarded.degradation
        );
        assert!(
            guarded.makespan_cycles <= unguarded.makespan_cycles,
            "safe mode must not run slower than unguarded gating: \
             {} !<= {}",
            guarded.makespan_cycles,
            unguarded.makespan_cycles
        );
    }
}
