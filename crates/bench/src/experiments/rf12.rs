//! R-F12 (extension) — State-retention style ablation.
//!
//! Retentive gating keeps architectural state on a leaky shadow rail;
//! non-retentive gating flushes it, leaking less while asleep but paying a
//! flush (longer entry) and a cold-start refill on every wake. At MAPG's
//! per-stall granularity the wake rate is enormous, so the cold-start tax
//! compounds — this table shows why the paper's design retains state.

use mapg::{PolicyKind, Simulation};
use mapg_power::{PgCircuitDesign, RetentionStyle, TechnologyParams};

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let tech = TechnologyParams::bulk_45nm();
    let clock = tech.nominal_clock();
    let baseline = Simulation::new(base_config(scale), PolicyKind::NoGating).run();

    let mut table = Table::new(
        "R-F12",
        "retention style ablation (mem_bound, MAPG policy)",
        vec![
            "retention",
            "residual%",
            "entry_cyc",
            "coldstart_cyc",
            "BET_cyc",
            "savings",
            "overhead",
        ],
    );
    for (label, style) in [
        ("retentive", RetentionStyle::Retentive),
        ("non-retentive", RetentionStyle::NonRetentive),
    ] {
        let circuit = PgCircuitDesign::fast_wakeup(&tech).with_retention(style);
        let config = base_config(scale).with_retention(style);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        table.push_row(vec![
            label.to_owned(),
            format!("{:.1}", circuit.residual_leakage().as_percent()),
            circuit.entry_cycles(clock).raw().to_string(),
            circuit.cold_start_cycles(clock).raw().to_string(),
            circuit.break_even_cycles(&tech, clock).raw().to_string(),
            pct(report.core_energy_savings_vs(&baseline)),
            pct(report.perf_overhead_vs(&baseline)),
        ]);
    }
    table.push_note(
        "per-stall gating wakes ~10^4 times per second of execution: the \
         cold-start tax dominates the residual-leakage win",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn non_retentive_leaks_less_but_costs_more_runtime() {
        let table = &run(Scale::Smoke)[0];
        let residual = |i: usize| -> f64 {
            table
                .cell(i, "residual%")
                .expect("cell")
                .parse()
                .expect("num")
        };
        assert!(residual(1) < residual(0), "non-retentive leaks less asleep");
        let overhead_retentive = parse_pct(table.cell(0, "overhead").expect("cell"));
        let overhead_flush = parse_pct(table.cell(1, "overhead").expect("cell"));
        assert!(
            overhead_flush > overhead_retentive,
            "cold starts must cost runtime: {overhead_flush} !> {overhead_retentive}"
        );
    }

    #[test]
    fn cold_start_only_for_non_retentive() {
        let table = &run(Scale::Smoke)[0];
        assert_eq!(table.cell(0, "coldstart_cyc"), Some("0"));
        let flush_cold: u64 = table
            .cell(1, "coldstart_cyc")
            .expect("cell")
            .parse()
            .expect("num");
        assert!(flush_cold > 0);
    }
}
