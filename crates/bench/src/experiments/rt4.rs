//! R-T4 (extension) — Seed sensitivity of the headline claims.
//!
//! The synthetic workload generator replaces recorded traces, so the
//! headline numbers must be shown to be properties of the *configuration*,
//! not of one lucky seed. This experiment replicates the MAPG-vs-baseline
//! comparison across seeds (paired per seed) and reports mean ± stdev and
//! the 95 % confidence half-width.

use mapg::{PolicyKind, Replication, RunReport};
use mapg_trace::WorkloadProfile;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::Table;

/// Replicas per configuration.
pub const REPLICAS: usize = 8;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "R-T4",
        format!("seed sensitivity over {REPLICAS} paired replicas"),
        vec!["workload", "metric", "mean", "stdev", "ci95", "min..max"],
    );
    for profile in [
        WorkloadProfile::mem_bound("mem_bound"),
        WorkloadProfile::mixed("mixed"),
    ] {
        let config = base_config(scale).with_profile(profile.clone());
        let baseline = Replication::run(config.clone(), PolicyKind::NoGating, REPLICAS);
        let mapg = Replication::run(config, PolicyKind::Mapg, REPLICAS);

        type PairedMetric = fn(&RunReport, &RunReport) -> f64;
        let metrics: [(&str, PairedMetric); 3] = [
            ("savings%", |m, b| m.core_energy_savings_vs(b) * 100.0),
            ("overhead%", |m, b| m.perf_overhead_vs(b) * 100.0),
            ("edp_delta%", |m, b| m.edp_delta_vs(b) * 100.0),
        ];
        for (name, metric) in metrics {
            let summary = mapg.summarize_paired(&baseline, metric);
            table.push_row(vec![
                profile.name().to_owned(),
                name.to_owned(),
                format!("{:.2}", summary.mean),
                format!("{:.2}", summary.stdev),
                format!("±{:.2}", summary.ci95_halfwidth()),
                format!("{:.2}..{:.2}", summary.min, summary.max),
            ]);
        }
    }
    table.push_note("paired per seed: MAPG and baseline replicas share workload streams");
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_stable_across_seeds() {
        let table = &run(Scale::Smoke)[0];
        // Row 0: mem_bound savings%.
        let mean: f64 = table.cell(0, "mean").expect("cell").parse().expect("num");
        let stdev: f64 = table.cell(0, "stdev").expect("cell").parse().expect("num");
        assert!(mean > 20.0, "mem-bound savings mean {mean}");
        assert!(
            stdev < mean * 0.2,
            "savings too noisy: {stdev} vs mean {mean}"
        );
    }

    #[test]
    fn six_rows_two_workloads_three_metrics() {
        let table = &run(Scale::Smoke)[0];
        assert_eq!(table.rows().len(), 6);
    }
}
