//! R-F11 (extension) — Interaction with hardware prefetching.
//!
//! A stream prefetcher converts sequential miss stalls into LLC hits:
//! performance improves, but the stalls MAPG harvests shrink. This
//! experiment quantifies the interaction on a streaming workload
//! (prefetch-friendly) and a pointer-chasing one (prefetch-immune) —
//! an extension beyond the original evaluation, which ran without
//! prefetching.

use mapg::{PolicyKind, Simulation};
use mapg_mem::HierarchyConfig;
use mapg_trace::WorkloadProfile;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

fn streaming_profile() -> WorkloadProfile {
    // Moderate intensity: sequential misses dominate but the DRAM channel
    // keeps idle slots, so low-priority prefetches actually issue. (A
    // bandwidth-saturated stream gains nothing from prefetching — the
    // drop-under-load throttle sheds almost everything.)
    WorkloadProfile::builder("streaming")
        .mem_refs_per_kilo_inst(90.0)
        .working_set_bytes(256 << 20)
        .spatial_locality(0.97)
        .hot_regions(2)
        .pointer_chase_fraction(0.02)
        .compute_ipc(2.0)
        .build()
}

fn chasing_profile() -> WorkloadProfile {
    WorkloadProfile::builder("pointer_chase")
        .mem_refs_per_kilo_inst(75.0)
        .working_set_bytes(256 << 20)
        .spatial_locality(0.3)
        .hot_regions(6)
        .pointer_chase_fraction(0.6)
        .compute_ipc(1.0)
        .build()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "R-F11",
        "MAPG x stream prefetching (extension)",
        vec![
            "workload",
            "prefetch",
            "stall%",
            "runtime_vs_noPf",
            "mapg_savings",
            "pf_accuracy",
        ],
    );
    for profile in [streaming_profile(), chasing_profile()] {
        let mut no_pf_runtime = 0u64;
        for (label, memory) in [
            ("off", HierarchyConfig::baseline()),
            ("on", HierarchyConfig::with_stream_prefetcher()),
        ] {
            let config = base_config(scale)
                .with_profile(profile.clone())
                .with_memory(memory);
            let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
            let mapg = Simulation::new(config, PolicyKind::Mapg).run();
            if label == "off" {
                no_pf_runtime = baseline.makespan_cycles;
            }
            let runtime_delta = baseline.makespan_cycles as f64 / no_pf_runtime as f64 - 1.0;
            table.push_row(vec![
                profile.name().to_owned(),
                label.to_owned(),
                format!("{:.1}", baseline.stall_fraction() * 100.0),
                pct(runtime_delta),
                pct(mapg.core_energy_savings_vs(&baseline)),
                format!("{:.0}%", baseline.memory.prefetch.accuracy() * 100.0),
            ]);
        }
    }
    table.push_note(
        "prefetching shrinks the streaming workload's gateable stalls \
         (savings drop with runtime); the pointer chaser is immune to both",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn prefetch_cuts_streaming_stalls_but_not_chasing() {
        let table = &run(Scale::Smoke)[0];
        // Rows: streaming/off, streaming/on, chase/off, chase/on.
        let stall =
            |i: usize| -> f64 { table.cell(i, "stall%").expect("cell").parse().expect("num") };
        assert!(
            stall(1) < stall(0) - 2.0,
            "prefetching should remove streaming stall time: {} !< {}",
            stall(1),
            stall(0)
        );
        assert!(
            (stall(3) - stall(2)).abs() < 2.0,
            "pointer chase should be immune: {} vs {}",
            stall(3),
            stall(2)
        );
        // And it must never slow the program down (drop-under-load bounds
        // the interference).
        let streaming_on = parse_pct(table.cell(1, "runtime_vs_noPf").expect("cell"));
        assert!(streaming_on < 1.0, "runtime regressed: {streaming_on}%");
        // Streaming prefetches are accurate; the chaser never streaks.
        let accuracy = table.cell(1, "pf_accuracy").expect("cell");
        assert_ne!(accuracy, "0%", "streaming must trigger the prefetcher");
        assert_eq!(table.cell(3, "pf_accuracy"), Some("0%"));
    }

    #[test]
    fn prefetch_reduces_streaming_gating_opportunity() {
        let table = &run(Scale::Smoke)[0];
        let savings_off = parse_pct(table.cell(0, "mapg_savings").expect("cell"));
        let savings_on = parse_pct(table.cell(1, "mapg_savings").expect("cell"));
        assert!(
            savings_on < savings_off,
            "prefetching must shrink gateable energy: {savings_on} !< {savings_off}"
        );
    }
}
