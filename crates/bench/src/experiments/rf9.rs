//! R-F9 — Technology scaling: leakage-fraction sweep.
//!
//! Re-splits the core's power budget so leakage is 10–60 % of the total
//! (planar scaling projections of the era) and compares clock gating, DVFS
//! and MAPG. Clock gating's savings are capped by the idle dynamic power;
//! MAPG's grow with the leakage share — the crossover is the figure's
//! point.

use mapg::{PolicyKind, Simulation};
use mapg_power::TechnologyParams;

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// Leakage fractions swept.
pub const LEAKAGE_FRACTIONS: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "R-F9",
        "leakage-fraction sweep (mem_bound): core-energy savings vs no-gating",
        vec![
            "leak_frac",
            "clock_gating",
            "dvfs_stall",
            "mapg",
            "mapg_oracle",
        ],
    );
    for &fraction in &LEAKAGE_FRACTIONS {
        let tech = TechnologyParams::bulk_45nm().with_leakage_fraction(fraction);
        let config = base_config(scale).with_tech(tech);
        let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let mut row = vec![format!("{:.0}%", fraction * 100.0)];
        for policy in [
            PolicyKind::ClockGating,
            PolicyKind::DvfsStall,
            PolicyKind::Mapg,
            PolicyKind::MapgOracle,
        ] {
            let report = Simulation::new(config.clone(), policy).run();
            row.push(pct(report.core_energy_savings_vs(&baseline)));
        }
        table.push_row(row);
    }
    table.push_note(
        "MAPG's advantage over clock gating widens as leakage grows; \
         clock gating is bounded by the idle-clock share of dynamic power",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    #[test]
    fn mapg_savings_grow_with_leakage() {
        let table = &run(Scale::Smoke)[0];
        let first = parse_pct(table.cell(0, "mapg").expect("cell"));
        let last = parse_pct(
            table
                .cell(LEAKAGE_FRACTIONS.len() - 1, "mapg")
                .expect("cell"),
        );
        assert!(
            last > first,
            "60% leakage should save more than 10%: {first} -> {last}"
        );
    }

    #[test]
    fn mapg_beats_clock_gating_at_high_leakage() {
        let table = &run(Scale::Smoke)[0];
        let last = LEAKAGE_FRACTIONS.len() - 1;
        let mapg = parse_pct(table.cell(last, "mapg").expect("cell"));
        let clock = parse_pct(table.cell(last, "clock_gating").expect("cell"));
        assert!(mapg > clock, "mapg {mapg} !> clock {clock} at 60% leakage");
    }
}
