//! R-F1 — Motivation: how much time is spent stalled on memory, and how
//! much of it is gateable.
//!
//! The paper's motivating figure: per benchmark, the fraction of execution
//! time the core sits idle waiting for DRAM, split into stalls longer than
//! the circuit's break-even time (gateable) and shorter ones.

use mapg::{PolicyKind, Simulation};
use mapg_power::{PgCircuitDesign, TechnologyParams};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::Table;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let tech = TechnologyParams::bulk_45nm();
    let circuit = PgCircuitDesign::fast_wakeup(&tech);
    let bet = circuit.break_even_cycles(&tech, tech.nominal_clock());

    let mut table = Table::new(
        "R-F1",
        format!("memory-stall time and gateable fraction (BET = {bet})"),
        vec![
            "workload",
            "stall%",
            "stalls_over_BET%",
            "mean_stall",
            "p95_stall",
        ],
    );
    for profile in suite_for(scale).iter() {
        let config = base_config(scale).with_profile(profile.clone());
        let report = Simulation::new(config, PolicyKind::NoGating).run();
        // Stall-duration distribution is aggregated across cores.
        let durations =
            report
                .core_stats
                .iter()
                .fold(mapg_mem::LatencyHistogram::new(), |mut acc, core| {
                    acc.merge(&core.stall_durations);
                    acc
                });
        table.push_row(vec![
            profile.name().to_owned(),
            format!("{:.1}", report.stall_fraction() * 100.0),
            format!("{:.1}", durations.fraction_above(bet) * 100.0),
            durations.mean().to_string(),
            durations.percentile(0.95).to_string(),
        ]);
    }
    table.push_note(
        "stalls_over_BET% is the fraction of stall *events* exceeding the \
         break-even time — the opportunity MAPG harvests",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_opportunity_is_large() {
        let table = &run(Scale::Smoke)[0];
        let over_bet: f64 = table
            .cell(0, "stalls_over_BET%")
            .expect("cell")
            .parse()
            .expect("num");
        assert!(
            over_bet > 50.0,
            "most mem-bound stalls should exceed BET, got {over_bet}%"
        );
    }
}
