//! R-T3 — The headline comparison.
//!
//! For every policy in the comparison set, geometric means across the
//! workload suite of: normalized core energy, leakage-energy savings,
//! normalized runtime, and normalized EDP — all relative to the no-gating
//! baseline. This is the reconstruction of the paper's summary table
//! ("who wins, by roughly what factor").

use mapg::{geometric_mean, PolicyKind, SuiteRunner};

use crate::experiments::{base_config, suite_for};
use crate::scale::Scale;
use crate::table::{pct, ratio, Table};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let runner = SuiteRunner::new(suite_for(scale), base_config(scale));
    let matrix = runner.run(&PolicyKind::COMPARISON_SET);

    let mut table = Table::new(
        "R-T3",
        "policy comparison, geomean across suite (vs no-gating)",
        vec![
            "policy",
            "norm_core_E",
            "leak_savings",
            "norm_runtime",
            "norm_EDP",
            "gated_stall%",
        ],
    );
    let baseline = "no-gating";
    for policy in matrix.policies() {
        let energy = matrix.geomean_normalized_energy(policy, baseline);
        let runtime = matrix.geomean_normalized_runtime(policy, baseline);
        let edp = matrix.geomean_normalized_edp(policy, baseline);
        let leak_savings = 1.0
            - geometric_mean(matrix.workloads().iter().map(|w| {
                let p = matrix.get(w, policy).expect("policy report");
                let b = matrix.get(w, baseline).expect("baseline report");
                p.leakage_energy() / b.leakage_energy()
            }));
        // Arithmetic mean for coverage: geomeans collapse when any
        // workload has zero gated time (compute-bound + never-gating).
        let coverages: Vec<f64> = matrix
            .workloads()
            .iter()
            .map(|w| {
                matrix
                    .get(w, policy)
                    .expect("policy report")
                    .gated_stall_coverage()
            })
            .collect();
        let coverage = coverages.iter().sum::<f64>() / coverages.len().max(1) as f64;
        table.push_row(vec![
            policy.to_owned(),
            ratio(energy),
            pct(leak_savings),
            ratio(runtime),
            ratio(edp),
            format!("{:.1}", coverage * 100.0),
        ]);
    }
    table.push_note("norm_* < 1.0 is better; leak_savings > 0 is better");
    table.push_note(
        "dvfs-stall is idealized (zero-latency V/f switching, infeasible \
         in-era): an optimistic bound, not a deployable policy",
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(table: &Table, name: &str, col: &str) -> f64 {
        (0..table.rows().len())
            .find(|&i| table.cell(i, "policy") == Some(name))
            .and_then(|i| table.cell(i, col))
            .expect("row")
            .parse()
            .expect("num")
    }

    #[test]
    fn mapg_beats_the_conventional_policies_on_energy() {
        let table = &run(Scale::Smoke)[0];
        let mapg = column(table, "mapg", "norm_core_E");
        assert!(mapg < column(table, "no-gating", "norm_core_E"));
        assert!(mapg < column(table, "clock-gating", "norm_core_E"));
        assert!(mapg < column(table, "dvfs-stall", "norm_core_E"));
        assert!(mapg < column(table, "timeout", "norm_core_E"));
        // Naive gating may harvest slightly more energy (it never skips),
        // but only within a small band...
        assert!(mapg <= column(table, "naive-on-miss", "norm_core_E") + 0.08);
        // ...while paying clearly more runtime.
        assert!(
            column(table, "mapg", "norm_runtime") < column(table, "naive-on-miss", "norm_runtime")
        );
        // The oracle may only be better.
        assert!(column(table, "mapg-oracle", "norm_core_E") <= mapg + 0.02);
    }

    #[test]
    fn oracle_has_best_edp() {
        let table = &run(Scale::Smoke)[0];
        let oracle = column(table, "mapg-oracle", "norm_EDP");
        for policy in [
            "no-gating",
            "clock-gating",
            "dvfs-stall",
            "naive-on-miss",
            "timeout",
            "mapg",
        ] {
            assert!(
                oracle <= column(table, policy, "norm_EDP") + 1e-9,
                "{policy} beat the oracle on EDP"
            );
        }
    }

    #[test]
    fn baseline_row_is_unity() {
        let table = &run(Scale::Smoke)[0];
        let row = (0..table.rows().len())
            .find(|&i| table.cell(i, "policy") == Some("no-gating"))
            .expect("baseline row");
        let energy: f64 = table
            .cell(row, "norm_core_E")
            .expect("cell")
            .parse()
            .expect("num");
        assert!((energy - 1.0).abs() < 1e-9);
    }
}
