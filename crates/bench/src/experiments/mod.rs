//! The reconstructed-experiment registry.
//!
//! One module per table/figure from DESIGN.md §5. Every experiment is a
//! pure function `Scale -> Vec<Table>`, so the `experiments` binary, the
//! criterion benches and the integration tests all drive the same code.

use mapg::SimConfig;
use mapg_trace::WorkloadSuite;

use crate::scale::Scale;
use crate::table::Table;

pub mod rf1;
pub mod rf10;
pub mod rf11;
pub mod rf12;
pub mod rf13;
pub mod rf14;
pub mod rf15;
pub mod rf16;
pub mod rf2;
pub mod rf3;
pub mod rf4;
pub mod rf5;
pub mod rf6;
pub mod rf7;
pub mod rf8;
pub mod rf9;
pub mod rt1;
pub mod rt2;
pub mod rt3;
pub mod rt4;

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Experiment id (matches DESIGN.md §5, lowercase accepted on the CLI).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The runner.
    pub run: fn(Scale) -> Vec<Table>,
}

/// Every experiment, in DESIGN.md order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "R-T1",
            title: "power-gating circuit design space",
            run: rt1::run,
        },
        Experiment {
            id: "R-T2",
            title: "workload characterization",
            run: rt2::run,
        },
        Experiment {
            id: "R-T3",
            title: "headline policy comparison (geomeans)",
            run: rt3::run,
        },
        Experiment {
            id: "R-T4",
            title: "extension: seed sensitivity (paired replicas)",
            run: rt4::run,
        },
        Experiment {
            id: "R-F1",
            title: "motivation: memory-stall time fraction",
            run: rf1::run,
        },
        Experiment {
            id: "R-F2",
            title: "per-benchmark core-energy savings",
            run: rf2::run,
        },
        Experiment {
            id: "R-F3",
            title: "per-benchmark performance overhead",
            run: rf3::run,
        },
        Experiment {
            id: "R-F4",
            title: "sensitivity: break-even guard sweep",
            run: rf4::run,
        },
        Experiment {
            id: "R-F5",
            title: "sensitivity: wake-up latency (switch width) sweep",
            run: rf5::run,
        },
        Experiment {
            id: "R-F6",
            title: "sensitivity: DRAM latency scaling",
            run: rf6::run,
        },
        Experiment {
            id: "R-F7",
            title: "predictor comparison",
            run: rf7::run,
        },
        Experiment {
            id: "R-F8",
            title: "many-core scaling with wake tokens",
            run: rf8::run,
        },
        Experiment {
            id: "R-F9",
            title: "technology scaling: leakage fraction sweep",
            run: rf9::run,
        },
        Experiment {
            id: "R-F10",
            title: "ablations: early wake and break-even guard",
            run: rf10::run,
        },
        Experiment {
            id: "R-F11",
            title: "extension: interaction with stream prefetching",
            run: rf11::run,
        },
        Experiment {
            id: "R-F12",
            title: "extension: state-retention style ablation",
            run: rf12::run,
        },
        Experiment {
            id: "R-F13",
            title: "extension: thermal feedback on leakage",
            run: rf13::run,
        },
        Experiment {
            id: "R-F14",
            title: "extension: MAPG vs interval DVFS governor",
            run: rf14::run,
        },
        Experiment {
            id: "R-F15",
            title: "extension: interactive workloads (stalls + OS idle)",
            run: rf15::run,
        },
        Experiment {
            id: "R-F16",
            title: "extension: fault injection and safe-mode degradation",
            run: rf16::run,
        },
    ]
}

/// Looks an experiment up by id, case-insensitively, with or without the
/// dash (`rt1`, `R-T1`, `r-t1` all match).
pub fn find(id: &str) -> Option<Experiment> {
    let norm = id.to_ascii_lowercase().replace('-', "");
    all()
        .into_iter()
        .find(|e| e.id.to_ascii_lowercase().replace('-', "") == norm)
}

/// The workload suite an experiment uses at `scale`.
pub(crate) fn suite_for(scale: Scale) -> WorkloadSuite {
    if scale.full_suite() {
        WorkloadSuite::spec_like()
    } else {
        WorkloadSuite::extremes()
    }
}

/// The base simulation configuration at `scale`.
///
/// When an ambient [`mapg_obs::MetricsHub`] is installed (the
/// `experiments` binary does this per experiment for `--metrics` and
/// `--manifest` runs), every simulation built on this base merges its
/// metrics into the hub; otherwise observability stays disabled and
/// costs one branch per would-be event.
pub(crate) fn base_config(scale: Scale) -> SimConfig {
    let config = SimConfig::default().with_instructions(scale.instructions());
    // Shards never change a report, so an `experiments --shards N` run
    // must stay byte-identical to the default — the CI sharded smoke run
    // diffs its CSVs against the same goldens to pin exactly that.
    let config = match mapg::ambient_shards() {
        Some(shards) => config.with_shards(shards),
        None => config,
    };
    let config = match mapg_obs::ambient_hub() {
        Some(hub) => config.with_metrics_hub(hub),
        None => config,
    };
    // Same pattern for the streaming event feed: a daemon job installs
    // an ambient `EventHub` so every simulation the experiment runs
    // publishes its trace batch to subscribers as it completes.
    match mapg_obs::ambient_event_hub() {
        Some(feed) => config.with_event_hub(feed),
        None => config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let experiments = all();
        assert_eq!(experiments.len(), 20);
        let mut ids: Vec<_> = experiments.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20, "duplicate experiment ids");
    }

    #[test]
    fn lookup_is_forgiving() {
        assert!(find("R-T1").is_some());
        assert!(find("rt1").is_some());
        assert!(find("r-f10").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_experiment_runs_at_smoke_scale() {
        for experiment in all() {
            let tables = (experiment.run)(Scale::Smoke);
            assert!(!tables.is_empty(), "{} produced no tables", experiment.id);
            for table in &tables {
                assert!(
                    !table.rows().is_empty(),
                    "{} produced an empty table {}",
                    experiment.id,
                    table.id()
                );
            }
        }
    }
}
