//! R-F15 (extension) — Interactive workloads: memory stalls + OS-scale
//! idle periods.
//!
//! Classic power gating targets long OS-visible idle (I/O waits,
//! descheduling); MAPG targets memory stalls. An interactive workload has
//! *both*. This experiment injects 200 µs-scale idle periods into a mixed
//! workload and shows that MAPG subsumes idle-driven gating: the timeout
//! policy harvests only the long idles, MAPG harvests the idles *and* the
//! memory stalls.

use mapg::{PolicyKind, Simulation};
use mapg_trace::{IdleInjection, WorkloadProfile};

use crate::experiments::base_config;
use crate::scale::Scale;
use crate::table::{pct, Table};

/// An interactive-style workload: gcc-like phases plus ~400k-cycle idle
/// periods (200 µs at 2 GHz). The injection interval scales with the run
/// length so roughly ten idle periods occur at every experiment scale.
fn interactive_profile(scale: Scale) -> WorkloadProfile {
    let interval = (scale.instructions() / 10).max(1_000);
    WorkloadProfile::builder("interactive")
        .mem_refs_per_kilo_inst(70.0)
        .working_set_bytes(32 << 20)
        .spatial_locality(0.6)
        .hot_regions(4)
        .pointer_chase_fraction(0.25)
        .compute_ipc(1.8)
        .idle_injection(IdleInjection::new(interval, 400_000))
        .build()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let config = base_config(scale).with_profile(interactive_profile(scale));
    let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();

    let mut table = Table::new(
        "R-F15",
        "interactive workload (memory stalls + injected OS idle)",
        vec![
            "policy",
            "gated%",
            "gated_stall_cov%",
            "core_E_savings",
            "overhead",
        ],
    );
    for policy in [
        PolicyKind::ClockGating,
        PolicyKind::Timeout { idle_cycles: 100 },
        PolicyKind::NaiveOnMiss,
        PolicyKind::Mapg,
        PolicyKind::MapgOracle,
    ] {
        let report = Simulation::new(config.clone(), policy).run();
        table.push_row(vec![
            policy.name().to_owned(),
            format!("{:.1}", report.gating.gated_fraction() * 100.0),
            format!("{:.1}", report.gated_stall_coverage() * 100.0),
            pct(report.core_energy_savings_vs(&baseline)),
            pct(report.perf_overhead_vs(&baseline)),
        ]);
    }
    table.push_note(
        "timeout gating recovers the long idles only; MAPG recovers idles \
         AND memory stalls — it subsumes idle-driven gating",
    );
    let idle_fraction = baseline.stall_fraction();
    table.push_note(format!(
        "baseline blocked fraction (stalls + idle): {:.1}%",
        idle_fraction * 100.0
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().expect("pct")
    }

    fn savings(table: &Table, policy: &str) -> f64 {
        let row = (0..table.rows().len())
            .find(|&i| table.cell(i, "policy") == Some(policy))
            .unwrap_or_else(|| panic!("missing policy {policy}"));
        parse_pct(table.cell(row, "core_E_savings").expect("cell"))
    }

    #[test]
    fn timeout_recovers_much_but_mapg_recovers_more() {
        let table = &run(Scale::Smoke)[0];
        let timeout = savings(table, "timeout");
        let mapg = savings(table, "mapg");
        let clock = savings(table, "clock-gating");
        assert!(
            timeout > clock,
            "long idles make timeout gating worthwhile: {timeout} !> {clock}"
        );
        assert!(
            mapg > timeout,
            "MAPG must subsume idle gating: {mapg} !> {timeout}"
        );
    }

    #[test]
    fn idle_injection_dominates_blocked_time() {
        let table = &run(Scale::Smoke)[0];
        // The note records the baseline blocked fraction; with 400k-cycle
        // idles every ~100k instructions, blocking must dominate runtime.
        let coverage = |policy: &str| {
            let row = (0..table.rows().len())
                .find(|&i| table.cell(i, "policy") == Some(policy))
                .expect("row");
            table
                .cell(row, "gated_stall_cov%")
                .expect("cell")
                .parse::<f64>()
                .expect("num")
        };
        assert!(
            coverage("mapg") > 80.0,
            "MAPG should gate most blocked time: {}",
            coverage("mapg")
        );
    }
}
