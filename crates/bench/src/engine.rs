//! The shared experiment-execution engine.
//!
//! The `experiments` binary and the `mapgd` daemon are both thin
//! callers of this module: one place decides how an experiment runs
//! (ambient shard count, inner worker budget, metrics/event hubs) and
//! — critically — how its tables are *rendered*. The rendering is the
//! repo's byte-identity contract: the committed goldens, the journal
//! payloads, `--out-dir` CSV files, and a daemon-fetched result must
//! all be the same bytes for the same `(experiment, scale, format)`,
//! which only holds if there is exactly one renderer.

use mapg_obs::{EventHub, MetricsHub};

use crate::experiments::Experiment;
use crate::manifest::TableSummary;
use crate::scale::Scale;
use crate::table::Table;

/// How rendered tables are formatted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `# {id} — {title}\n` header followed by the CSV rows — the
    /// golden-file and daemon-fetch format.
    Csv,
    /// Aligned human-readable text, one blank line after each table.
    Text,
}

impl OutputFormat {
    /// Parses `csv` / `text` (the journal-context and wire names).
    pub fn parse(name: &str) -> Option<OutputFormat> {
        match name {
            "csv" => Some(OutputFormat::Csv),
            "text" => Some(OutputFormat::Text),
            _ => None,
        }
    }

    /// Stable lowercase name (journal contexts, wire protocol).
    pub fn name(self) -> &'static str {
        match self {
            OutputFormat::Csv => "csv",
            OutputFormat::Text => "text",
        }
    }
}

/// Renders `tables` exactly the way every output channel must: this is
/// the single definition of the byte format (see the module docs).
pub fn render_tables(tables: &[Table], format: OutputFormat) -> String {
    let mut rendered = String::new();
    for table in tables {
        match format {
            OutputFormat::Csv => {
                rendered.push_str(&format!("# {} — {}\n", table.id(), table.title()));
                rendered.push_str(&table.to_csv());
            }
            OutputFormat::Text => {
                rendered.push_str(&table.to_text());
                rendered.push('\n');
            }
        }
    }
    rendered
}

/// One experiment execution: what to run and under which resources.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// The registry entry to run.
    pub experiment: Experiment,
    /// Simulation scale.
    pub scale: Scale,
    /// Output rendering.
    pub format: OutputFormat,
    /// Ambient shard count for the simulated substrate (1 = unsharded;
    /// reports are identical at any value).
    pub shards: usize,
    /// Worker budget for the experiment's *inner* fan-out (its suite
    /// runner and shard wheels). A scheduler running several jobs
    /// concurrently hands each job a slice of the host so N jobs never
    /// oversubscribe to N × `available_parallelism`.
    pub jobs: usize,
    /// Merge every simulation's metrics into this hub.
    pub metrics_hub: Option<MetricsHub>,
    /// Publish every simulation's trace batch into this feed.
    pub event_hub: Option<EventHub>,
}

impl ExperimentJob {
    /// A job with no observers: `experiment` at `scale`, rendered as
    /// `format`, unsharded, inner fan-out budget `jobs`.
    pub fn new(experiment: Experiment, scale: Scale, format: OutputFormat, jobs: usize) -> Self {
        ExperimentJob {
            experiment,
            scale,
            format,
            shards: 1,
            jobs: jobs.max(1),
            metrics_hub: None,
            event_hub: None,
        }
    }

    /// Runs the experiment and renders its tables.
    ///
    /// Deterministic contract: for a fixed `(experiment, scale,
    /// format)` the rendered bytes are identical at any `shards`,
    /// `jobs`, or observer configuration — those only change
    /// scheduling and side channels, never the tables.
    pub fn execute(&self) -> ExperimentOutput {
        let run = || {
            mapg::with_ambient_shards(self.shards, || {
                mapg_pool::with_default_jobs(self.jobs.max(1), || (self.experiment.run)(self.scale))
            })
        };
        let run_with_feed = || match &self.event_hub {
            Some(feed) => mapg_obs::with_ambient_event_hub(feed.clone(), run),
            None => run(),
        };
        let tables = match &self.metrics_hub {
            Some(hub) => mapg_obs::with_ambient_hub(hub.clone(), run_with_feed),
            None => run_with_feed(),
        };
        ExperimentOutput {
            id: self.experiment.id,
            rendered: render_tables(&tables, self.format),
            tables: tables.iter().map(TableSummary::of).collect(),
        }
    }
}

/// What an [`ExperimentJob`] produced.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The experiment id (registry casing, e.g. `R-T1`).
    pub id: &'static str,
    /// The rendered tables — the byte-identity payload.
    pub rendered: String,
    /// Per-table summaries for manifests and journals.
    pub tables: Vec<TableSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn format_names_round_trip() {
        for format in [OutputFormat::Csv, OutputFormat::Text] {
            assert_eq!(OutputFormat::parse(format.name()), Some(format));
        }
        assert_eq!(OutputFormat::parse("json"), None);
    }

    /// The engine renders byte-identically to the inlined renderer the
    /// `experiments` binary used to carry, at any jobs/shards setting.
    #[test]
    fn execute_is_deterministic_across_resources() {
        let experiment = experiments::find("R-T1").expect("registry has R-T1");
        let base = ExperimentJob::new(experiment, Scale::Smoke, OutputFormat::Csv, 1).execute();
        assert!(base.rendered.starts_with("# R-T1 — "), "{}", base.rendered);
        assert!(!base.tables.is_empty());

        let mut wide = ExperimentJob::new(experiment, Scale::Smoke, OutputFormat::Csv, 4);
        wide.shards = 2;
        wide.metrics_hub = Some(MetricsHub::new());
        wide.event_hub = Some(EventHub::new(4096));
        let observed = wide.execute();
        assert_eq!(
            observed.rendered, base.rendered,
            "resources and observers must never change the rendered bytes"
        );
        let text = ExperimentJob::new(experiment, Scale::Smoke, OutputFormat::Text, 1).execute();
        assert_ne!(text.rendered, base.rendered);
        assert!(!text.rendered.starts_with("# R-T1"));
    }

    /// A simulating experiment (R-T1 is analytic) publishes its trace
    /// batches into the job's event hub.
    #[test]
    fn simulating_jobs_feed_the_event_hub() {
        let experiment = experiments::find("R-F1").expect("registry has R-F1");
        let mut job = ExperimentJob::new(experiment, Scale::Smoke, OutputFormat::Csv, 2);
        job.event_hub = Some(EventHub::new(65_536));
        let output = job.execute();
        assert!(!output.rendered.is_empty());
        let feed = job.event_hub.as_ref().unwrap();
        assert!(
            feed.published() > 0,
            "an event hub must see the job's trace records"
        );
        let batch = feed.poll(0);
        assert_eq!(
            batch.records.len() as u64 + batch.missed,
            feed.published(),
            "poll must account for every published record"
        );
    }
}
