//! `mapg-client`: a thin typed client for the [`mapgd`](crate::daemon)
//! wire protocol.
//!
//! Every method opens one TCP connection, writes one request line, and
//! reads the response line(s) — mirroring the daemon's
//! one-request-per-connection model. There is no connection state to
//! manage; a [`Client`] is just the daemon's address.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mapg::fuzz::{parse_json, write_json, JsonValue};

/// Errors a client call can hit: transport trouble, a malformed
/// response, or a daemon-side `"ok": false` refusal.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect, write, or read.
    Io(String),
    /// The response line was not the JSON the protocol promises.
    Protocol(String),
    /// The daemon answered `"ok": false` with this error message.
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(detail) => write!(f, "transport error: {detail}"),
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ClientError::Daemon(message) => write!(f, "daemon refused: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A submitted job's terminal summary, as reported by `status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// `queued` / `running` / `done` / `failed` / `cancelled`.
    pub state: String,
    /// True once the state can no longer change.
    pub terminal: bool,
    /// Global dispatch ordinal (present once the job started).
    pub started_seq: Option<u64>,
    /// Whether the payload was replayed from the daemon's journal.
    pub replayed: bool,
    /// Failure reason (`failed` only).
    pub error: Option<String>,
}

/// A fetched result: the rendered payload plus the run's counters.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job id.
    pub id: u64,
    /// The rendered tables — byte-identical to the `experiments`
    /// binary's output for the same `(experiment, scale, format)`.
    pub payload: String,
    /// Metrics counter snapshot of the fresh run (empty for replays).
    pub counters: Vec<(String, u64)>,
    /// Whether this payload came from the journal.
    pub replayed: bool,
}

/// One streamed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEvent {
    /// Feed sequence number.
    pub seq: u64,
    /// Cycle timestamp.
    pub at: u64,
    /// Scope label (`core3`, `bank1`, `global`).
    pub scope: String,
    /// Per-variant event label (`sleep-enter`, `wake-done`, …).
    pub kind: String,
}

/// How a stream ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEnd {
    /// Records the feed published over its lifetime.
    pub total: u64,
    /// Records this subscriber skipped (cursor behind the buffer).
    pub missed: u64,
    /// Records the feed evicted before anyone could see them.
    pub dropped: u64,
    /// The job's state when the stream closed.
    pub state: String,
}

/// Client handle: the daemon's `host:port`.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7070`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// Sends one request object, returns the parsed single-line
    /// response after checking `"ok"`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure, unparseable response, or a
    /// daemon-side refusal.
    pub fn roundtrip(&self, request: &JsonValue) -> Result<JsonValue, ClientError> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Io(format!("connect '{}': {e}", self.addr)))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        send_line(&stream, request)?;
        let response = read_line(&mut reader)?
            .ok_or_else(|| ClientError::Protocol("daemon closed without responding".into()))?;
        check_ok(response)
    }

    /// `ping`: protocol handshake; returns the protocol version.
    pub fn ping(&self) -> Result<u64, ClientError> {
        let response = self.roundtrip(&request("ping", Vec::new()))?;
        response
            .get("protocol")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol("ping response lacks 'protocol'".into()))
    }

    /// `submit`: enqueues `experiment` for `client_name` and returns
    /// the job id.
    pub fn submit(
        &self,
        client_name: &str,
        experiment: &str,
        scale: &str,
        format: &str,
        priority: u8,
    ) -> Result<u64, ClientError> {
        let response = self.roundtrip(&request(
            "submit",
            vec![
                ("client".into(), JsonValue::String(client_name.to_owned())),
                (
                    "experiment".into(),
                    JsonValue::String(experiment.to_owned()),
                ),
                ("scale".into(), JsonValue::String(scale.to_owned())),
                ("format".into(), JsonValue::String(format.to_owned())),
                ("priority".into(), JsonValue::Number(priority.to_string())),
            ],
        ))?;
        response
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response lacks 'id'".into()))
    }

    /// `status` for one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, ClientError> {
        let response = self.roundtrip(&request("status", vec![id_field(id)]))?;
        Ok(JobStatus {
            id,
            state: response
                .get("state")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            terminal: response
                .get("terminal")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            started_seq: response.get("started_seq").and_then(JsonValue::as_u64),
            replayed: response
                .get("replayed")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            error: response
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
        })
    }

    /// Polls `status` until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Any `status` error, or [`ClientError::Io`] when `timeout`
    /// elapses first.
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Result<JobStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.terminal {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io(format!(
                    "job {id} still '{}' after {timeout:?}",
                    status.state
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// `cancel`: true if this call changed the job's fate.
    pub fn cancel(&self, id: u64) -> Result<bool, ClientError> {
        let response = self.roundtrip(&request("cancel", vec![id_field(id)]))?;
        Ok(response
            .get("cancelled")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false))
    }

    /// `fetch`: the rendered payload and counters of a `done` job.
    pub fn fetch(&self, id: u64) -> Result<JobResult, ClientError> {
        let response = self.roundtrip(&request("fetch", vec![id_field(id)]))?;
        let payload = response
            .get("payload")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ClientError::Protocol("fetch response lacks 'payload'".into()))?
            .to_owned();
        let mut counters = Vec::new();
        if let Some(JsonValue::Object(fields)) = response.get("counters") {
            for (name, value) in fields {
                if let Some(value) = value.as_u64() {
                    counters.push((name.clone(), value));
                }
            }
        }
        Ok(JobResult {
            id,
            payload,
            counters,
            replayed: response
                .get("replayed")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    }

    /// `stream`: subscribes to a job's trace feed from cursor `from`,
    /// calling `on_event` per record, until the feed closes. Returns
    /// the terminator's accounting.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon refusal (unknown job).
    pub fn stream(
        &self,
        id: u64,
        from: u64,
        mut on_event: impl FnMut(StreamEvent),
    ) -> Result<StreamEnd, ClientError> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Io(format!("connect '{}': {e}", self.addr)))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ClientError::Io(e.to_string()))?,
        );
        send_line(
            &stream,
            &request(
                "stream",
                vec![
                    id_field(id),
                    ("from".into(), JsonValue::Number(from.to_string())),
                ],
            ),
        )?;
        let header = read_line(&mut reader)?
            .ok_or_else(|| ClientError::Protocol("daemon closed without responding".into()))?;
        check_ok(header)?;
        loop {
            let Some(line) = read_line(&mut reader)? else {
                return Err(ClientError::Protocol(
                    "stream closed without a terminator".into(),
                ));
            };
            if line
                .get("stream_end")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false)
            {
                return Ok(StreamEnd {
                    total: line.get("total").and_then(JsonValue::as_u64).unwrap_or(0),
                    missed: line.get("missed").and_then(JsonValue::as_u64).unwrap_or(0),
                    dropped: line.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0),
                    state: line
                        .get("state")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_owned(),
                });
            }
            let event = StreamEvent {
                seq: line.get("seq").and_then(JsonValue::as_u64).unwrap_or(0),
                at: line.get("at").and_then(JsonValue::as_u64).unwrap_or(0),
                scope: line
                    .get("scope")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_owned(),
                kind: line
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_owned(),
            };
            on_event(event);
        }
    }

    /// `stats`: the daemon's queue/job overview, as raw JSON.
    pub fn stats(&self) -> Result<JsonValue, ClientError> {
        self.roundtrip(&request("stats", Vec::new()))
    }

    /// `quota`: sets `client_name`'s in-flight quota.
    pub fn set_quota(&self, client_name: &str, quota: usize) -> Result<(), ClientError> {
        self.roundtrip(&request(
            "quota",
            vec![
                ("client".into(), JsonValue::String(client_name.to_owned())),
                ("quota".into(), JsonValue::Number(quota.to_string())),
            ],
        ))?;
        Ok(())
    }

    /// `pause`: stop dispatching queued jobs (running jobs finish).
    pub fn pause(&self) -> Result<(), ClientError> {
        self.roundtrip(&request("pause", Vec::new()))?;
        Ok(())
    }

    /// `resume`: restart dispatch.
    pub fn resume(&self) -> Result<(), ClientError> {
        self.roundtrip(&request("resume", Vec::new()))?;
        Ok(())
    }

    /// `shutdown`: ask the daemon to stop.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.roundtrip(&request("shutdown", Vec::new()))?;
        Ok(())
    }
}

fn request(op: &str, mut fields: Vec<(String, JsonValue)>) -> JsonValue {
    fields.insert(0, ("op".into(), JsonValue::String(op.to_owned())));
    JsonValue::Object(fields)
}

fn id_field(id: u64) -> (String, JsonValue) {
    ("id".into(), JsonValue::Number(id.to_string()))
}

fn send_line(mut stream: &TcpStream, value: &JsonValue) -> Result<(), ClientError> {
    let mut line = write_json(value);
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| ClientError::Io(format!("write request: {e}")))
}

/// Reads one protocol line; `None` on clean EOF.
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<JsonValue>, ClientError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| ClientError::Io(format!("read response: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    parse_json(&line)
        .map(Some)
        .map_err(|e| ClientError::Protocol(format!("bad response line: {e} in {line:?}")))
}

/// Rejects `"ok": false` responses as [`ClientError::Daemon`].
fn check_ok(response: JsonValue) -> Result<JsonValue, ClientError> {
    match response.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => Ok(response),
        Some(false) => Err(ClientError::Daemon(
            response
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified error")
                .to_owned(),
        )),
        None => Err(ClientError::Protocol(format!(
            "response lacks 'ok': {}",
            write_json(&response)
        ))),
    }
}
