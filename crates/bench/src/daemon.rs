//! `mapgd`: the simulation-as-a-service daemon.
//!
//! A long-running TCP server that accepts experiment jobs from many
//! concurrent clients, schedules them fairly across tenants, executes
//! them through the shared [`ExperimentJob`](crate::ExperimentJob)
//! engine (so a daemon-run CSV is byte-identical to the `experiments`
//! binary's), and streams each job's trace events to subscribers while
//! the job is still running.
//!
//! # Wire protocol (v1)
//!
//! Line-delimited JSON over TCP, one request per connection. The
//! client sends a single request line `{"op": "...", ...}`; the server
//! answers with one response line — except `stream`, which keeps the
//! connection open and writes one line per event followed by a
//! terminator line. Every non-stream response carries `"ok": true` or
//! `"ok": false` with an `"error"` string. The grammar (DESIGN §15):
//!
//! ```text
//! request    = object NL
//! op         = "ping" | "submit" | "status" | "cancel" | "fetch"
//!            | "stream" | "stats" | "quota" | "pause" | "resume"
//!            | "shutdown"
//! submit     = {op, client?, experiment, scale?, format?, priority?, shards?}
//! event-line = {"seq", "at", "scope", "kind"}
//! end-line   = {"stream_end": true, "total", "missed", "dropped", "state"}
//! ```
//!
//! # Scheduling model
//!
//! Jobs land in a [`FairQueue`]: FIFO per client, round-robin across
//! clients, higher [`Priority`] first, and a per-client in-flight
//! quota. `max_jobs` runner threads pull from the queue; each job's
//! *inner* fan-out (suite runner, shard wheels) is budgeted to
//! `workers_total / max_jobs` via the pool's thread-local override, so
//! N concurrent jobs never oversubscribe the host N-fold. Each job runs
//! as a single-item supervised batch, inheriting the supervisor's
//! cancellation and panic quarantine: a panicking experiment fails its
//! job, never the daemon.
//!
//! # Durability
//!
//! With a journal configured, every completed job is appended under the
//! key `<ID>@<scale>@<format>`; a restarted daemon replays completed
//! keys verbatim (byte-identical payloads) instead of re-running them.
//! The journal's advisory lock (see [`crate::JournalError::Held`])
//! keeps a daemon and a CLI run from interleaving rewrites of the same
//! file; a SIGKILLed daemon's stale lock is taken over on restart.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use mapg::fuzz::{parse_json, write_json, JsonValue};
use mapg_obs::{EventHub, MetricsHub};
use mapg_pool::{CancelToken, FairQueue, JobOutcome, Priority, Supervisor};

use crate::engine::{ExperimentJob, OutputFormat};
use crate::experiments::{self, Experiment};
use crate::journal::{Journal, JournalEntry};
use crate::scale::Scale;

/// Wire protocol version, echoed by `ping`.
pub const PROTOCOL_VERSION: u32 = 1;

/// How often a streaming connection re-polls an idle feed (also the
/// granularity at which it notices daemon shutdown).
const STREAM_POLL: Duration = Duration::from_millis(100);

/// Everything [`Daemon::start`] needs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Concurrently *running* jobs (runner threads).
    pub max_jobs: usize,
    /// Host worker budget split evenly across the runners: each job's
    /// inner fan-out gets `max(1, workers_total / max_jobs)` workers.
    pub workers_total: usize,
    /// Default per-client in-flight quota (overridable per client with
    /// the `quota` op).
    pub default_quota: usize,
    /// Retained records per job event feed.
    pub feed_capacity: usize,
    /// Completion journal: completed jobs are appended and replayed
    /// byte-identically after a restart.
    pub journal: Option<PathBuf>,
    /// Start with dispatch paused (`resume` op starts it) — lets a
    /// test or operator stage a precise queue before anything runs.
    pub paused: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_jobs: 2,
            workers_total: mapg_pool::default_jobs(),
            default_quota: 2,
            feed_capacity: mapg_obs::DEFAULT_FEED_CAPACITY,
            journal: None,
            paused: false,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
    Cancelled,
}

impl JobState {
    fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// What a runner needs to execute a job (the [`FairQueue`] payload).
#[derive(Debug, Clone)]
struct JobSpec {
    experiment: Experiment,
    scale: Scale,
    format: OutputFormat,
    shards: usize,
}

impl JobSpec {
    /// The journal entry id: pins everything that shapes the payload.
    fn journal_key(&self) -> String {
        format!(
            "{}@{}@{}",
            self.experiment.id,
            self.scale.name(),
            self.format.name()
        )
    }
}

/// Everything the daemon remembers about a job.
#[derive(Debug)]
struct JobRecord {
    client: String,
    spec: JobSpec,
    priority: Priority,
    state: JobState,
    /// Global dispatch ordinal, assigned when a runner picks the job
    /// up — the observable FIFO/fairness order for tests and tooling.
    started_seq: Option<u64>,
    attempts: u32,
    replayed: bool,
    payload: Option<String>,
    /// Metrics counters snapshot of a completed fresh run (empty for
    /// replays, whose runs were counted when first executed).
    counters: Vec<(String, u64)>,
    feed: EventHub,
    cancel: CancelToken,
}

/// Queue + registry under one lock: every scheduling decision and every
/// state read sees one consistent world.
#[derive(Debug)]
struct Core {
    fair: FairQueue<JobSpec>,
    jobs: BTreeMap<u64, JobRecord>,
}

struct Shared {
    core: Mutex<Core>,
    /// Runners park here; submit/resume/cancel/shutdown notify.
    work: Condvar,
    paused: AtomicBool,
    shutdown: AtomicBool,
    started_seq: AtomicU64,
    journal: Option<Mutex<Journal>>,
    /// Per-job inner worker budget (precomputed from the config).
    job_budget: usize,
    feed_capacity: usize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().expect("daemon core poisoned")
    }
}

/// A running daemon: accept thread + runner threads around a [`Shared`]
/// scheduler. Use [`Daemon::start`] then [`Daemon::wait`].
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    runners: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds, opens the journal (taking its lock), and spawns the
    /// accept and runner threads.
    ///
    /// # Errors
    ///
    /// A bind failure or journal error (held / malformed / mismatched)
    /// as a displayable message.
    pub fn start(config: DaemonConfig) -> Result<Daemon, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind '{}': {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let journal = match &config.journal {
            Some(path) => Some(Mutex::new(
                Journal::open(path, "mapgd").map_err(|e| e.to_string())?,
            )),
            None => None,
        };
        let max_jobs = config.max_jobs.max(1);
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                fair: FairQueue::new(config.default_quota.max(1)),
                jobs: BTreeMap::new(),
            }),
            work: Condvar::new(),
            paused: AtomicBool::new(config.paused),
            shutdown: AtomicBool::new(false),
            started_seq: AtomicU64::new(0),
            journal,
            job_budget: (config.workers_total / max_jobs).max(1),
            feed_capacity: config.feed_capacity.max(1),
        });

        let runners = (0..max_jobs)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mapgd-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mapgd-accept".to_owned())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        eprintln!(
            "[mapgd] listening on {addr} ({max_jobs} runner(s) x {} worker(s), quota {})",
            shared.job_budget,
            config.default_quota.max(1)
        );
        Ok(Daemon {
            shared,
            addr,
            accept: Some(accept),
            runners,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop: no new dispatches, runners drain, the
    /// accept loop exits. Equivalent to the `shutdown` op.
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }

    /// Blocks until the daemon has shut down and every thread joined.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        eprintln!("[mapgd] stopped");
    }
}

/// Flags shutdown, wakes the runners, and pokes the accept loop with a
/// throwaway connection so it re-checks the flag.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::Release);
    shared.work.notify_all();
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let addr = listener.local_addr().expect("listener address");
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("mapgd-conn".to_owned())
            .spawn(move || {
                if let Err(error) = handle_connection(stream, &shared, addr) {
                    eprintln!("[mapgd] connection error: {error}");
                }
            });
        if let Err(error) = spawned {
            eprintln!("[mapgd] cannot spawn connection thread: {error}");
        }
    }
}

fn runner_loop(shared: &Arc<Shared>) {
    loop {
        // Park until there is dispatchable work (or shutdown).
        let dispatch = {
            let mut core = shared.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !shared.paused.load(Ordering::Acquire) {
                    if let Some(dispatch) = core.fair.next() {
                        break dispatch;
                    }
                }
                core = shared.work.wait(core).expect("daemon core poisoned");
            }
        };
        let id = dispatch.id;
        let seq = shared.started_seq.fetch_add(1, Ordering::Relaxed);
        let (spec, feed, cancel) = {
            let mut core = shared.lock();
            let record = core.jobs.get_mut(&id).expect("dispatched job registered");
            record.state = JobState::Running;
            record.started_seq = Some(seq);
            (
                record.spec.clone(),
                record.feed.clone(),
                record.cancel.clone(),
            )
        };
        eprintln!(
            "[mapgd] job {id} start: {} for '{}' (dispatch #{seq})",
            spec.journal_key(),
            dispatch.client
        );

        let state = execute_job(shared, &spec, feed.clone(), cancel, id);

        {
            let mut core = shared.lock();
            core.fair.mark_done(&dispatch.client);
            let record = core.jobs.get_mut(&id).expect("running job registered");
            // A cancel that raced job completion keeps the cancel: the
            // client was already told the job was going away.
            if record.state == JobState::Running {
                eprintln!("[mapgd] job {id} {}", state.label());
                record.state = state;
            }
        }
        feed.close();
        shared.work.notify_all();
    }
}

/// Runs one job to a terminal state: replay from the journal when
/// completed before, otherwise a single-item supervised batch through
/// the shared engine (then journaled).
fn execute_job(
    shared: &Arc<Shared>,
    spec: &JobSpec,
    feed: EventHub,
    cancel: CancelToken,
    id: u64,
) -> JobState {
    let key = spec.journal_key();
    if let Some(journal) = &shared.journal {
        let replay = journal
            .lock()
            .expect("journal poisoned")
            .completed("experiment", &key)
            .map(|e| (e.payload.clone(), e.attempts));
        if let Some((payload, attempts)) = replay {
            let mut core = shared.lock();
            let record = core.jobs.get_mut(&id).expect("job registered");
            record.payload = Some(payload);
            record.attempts = attempts;
            record.replayed = true;
            return JobState::Done;
        }
    }

    let supervisor = Supervisor::new(1).with_cancel_token(cancel);
    let budget = shared.job_budget;
    let job_spec = spec.clone();
    let started = std::time::Instant::now();
    let reports = supervisor.map_supervised(vec![()], move |_: &(), ctx| {
        let hub = MetricsHub::new();
        let mut job =
            ExperimentJob::new(job_spec.experiment, job_spec.scale, job_spec.format, budget);
        job.shards = job_spec.shards;
        job.metrics_hub = Some(hub.clone());
        job.event_hub = Some(feed.clone());
        let output = job.execute();
        (output, hub.snapshot(), ctx.attempt)
    });
    let report = reports.into_iter().next().expect("one report per job");
    match report.outcome {
        JobOutcome::Ok((output, metrics, attempt)) => {
            let entry = JournalEntry::new(
                "experiment",
                key,
                0,
                attempt,
                started.elapsed().as_secs_f64() * 1e3,
                output.rendered.clone(),
                output.tables.clone(),
            );
            if let Some(journal) = &shared.journal {
                let appended = journal.lock().expect("journal poisoned").append(entry);
                if let Err(error) = appended {
                    eprintln!("[mapgd] job {id}: journal append failed: {error}");
                }
            }
            let mut core = shared.lock();
            let record = core.jobs.get_mut(&id).expect("job registered");
            record.payload = Some(output.rendered);
            record.attempts = attempt;
            record.counters = metrics
                .counters()
                .map(|(name, value)| (name.to_owned(), value))
                .collect();
            JobState::Done
        }
        JobOutcome::Cancelled => JobState::Cancelled,
        JobOutcome::Panicked { message } => JobState::Failed(format!("panicked: {message}")),
        JobOutcome::TimedOut { deadline } => {
            JobState::Failed(format!("timed out after {deadline:?}"))
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(()); // bare connect (the shutdown poke) — nothing to do
    }
    let mut stream = stream;
    let request = match parse_json(&line) {
        Ok(doc) => doc,
        Err(error) => return respond(&mut stream, &fail(format!("malformed request: {error}"))),
    };
    let Some(op) = request.get("op").and_then(JsonValue::as_str) else {
        return respond(&mut stream, &fail("missing 'op'".to_owned()));
    };
    match op {
        "ping" => respond(
            &mut stream,
            &ok(vec![
                ("server".into(), JsonValue::String("mapgd".into())),
                (
                    "protocol".into(),
                    JsonValue::Number(PROTOCOL_VERSION.to_string()),
                ),
            ]),
        ),
        "submit" => {
            let response = op_submit(shared, &request);
            respond(&mut stream, &response)
        }
        "status" => {
            let response = op_status(shared, &request);
            respond(&mut stream, &response)
        }
        "cancel" => {
            let response = op_cancel(shared, &request);
            respond(&mut stream, &response)
        }
        "fetch" => {
            let response = op_fetch(shared, &request);
            respond(&mut stream, &response)
        }
        "stream" => op_stream(shared, &request, &mut stream),
        "stats" => {
            let response = op_stats(shared);
            respond(&mut stream, &response)
        }
        "quota" => {
            let response = op_quota(shared, &request);
            respond(&mut stream, &response)
        }
        "pause" => {
            shared.paused.store(true, Ordering::Release);
            respond(&mut stream, &ok(vec![paused_field(true)]))
        }
        "resume" => {
            shared.paused.store(false, Ordering::Release);
            shared.work.notify_all();
            respond(&mut stream, &ok(vec![paused_field(false)]))
        }
        "shutdown" => {
            eprintln!("[mapgd] shutdown requested");
            let result = respond(&mut stream, &ok(Vec::new()));
            request_shutdown(shared, addr);
            result
        }
        other => respond(&mut stream, &fail(format!("unknown op '{other}'"))),
    }
}

fn op_submit(shared: &Arc<Shared>, request: &JsonValue) -> JsonValue {
    if shared.shutdown.load(Ordering::Acquire) {
        return fail("daemon is shutting down".to_owned());
    }
    let client = request
        .get("client")
        .and_then(JsonValue::as_str)
        .unwrap_or("anon")
        .to_owned();
    let Some(experiment_id) = request.get("experiment").and_then(JsonValue::as_str) else {
        return fail("submit needs 'experiment'".to_owned());
    };
    let Some(experiment) = experiments::find(experiment_id) else {
        return fail(format!("unknown experiment '{experiment_id}'"));
    };
    let scale_name = request
        .get("scale")
        .and_then(JsonValue::as_str)
        .unwrap_or("smoke");
    let Some(scale) = Scale::parse(scale_name) else {
        return fail(format!("unknown scale '{scale_name}'"));
    };
    let format_name = request
        .get("format")
        .and_then(JsonValue::as_str)
        .unwrap_or("csv");
    let Some(format) = OutputFormat::parse(format_name) else {
        return fail(format!("unknown format '{format_name}'"));
    };
    let priority = request
        .get("priority")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    let Ok(priority) = Priority::try_from(priority) else {
        return fail(format!("priority {priority} out of range (0-255)"));
    };
    let shards = request
        .get("shards")
        .and_then(JsonValue::as_usize)
        .unwrap_or(1)
        .max(1);
    let spec = JobSpec {
        experiment,
        scale,
        format,
        shards,
    };
    let id = {
        let mut core = shared.lock();
        let id = core.fair.submit(&client, priority, spec.clone());
        core.jobs.insert(
            id,
            JobRecord {
                client: client.clone(),
                spec,
                priority,
                state: JobState::Queued,
                started_seq: None,
                attempts: 0,
                replayed: false,
                payload: None,
                counters: Vec::new(),
                feed: EventHub::new(shared.feed_capacity),
                cancel: CancelToken::new(),
            },
        );
        id
    };
    shared.work.notify_all();
    eprintln!("[mapgd] job {id} queued: {experiment_id} for '{client}' (priority {priority})");
    ok(vec![("id".into(), JsonValue::Number(id.to_string()))])
}

fn op_status(shared: &Arc<Shared>, request: &JsonValue) -> JsonValue {
    let Some(id) = request.get("id").and_then(JsonValue::as_u64) else {
        return fail("status needs 'id'".to_owned());
    };
    let core = shared.lock();
    let Some(record) = core.jobs.get(&id) else {
        return fail(format!("unknown job {id}"));
    };
    ok(status_fields(id, record))
}

fn op_cancel(shared: &Arc<Shared>, request: &JsonValue) -> JsonValue {
    let Some(id) = request.get("id").and_then(JsonValue::as_u64) else {
        return fail("cancel needs 'id'".to_owned());
    };
    let mut core = shared.lock();
    let Some(record) = core.jobs.get(&id) else {
        return fail(format!("unknown job {id}"));
    };
    let cancelled = match record.state {
        JobState::Queued => {
            // Still waiting: pull it out of the queue before a runner
            // can dispatch it.
            let removed = core.fair.cancel(id).is_some();
            let record = core.jobs.get_mut(&id).expect("job registered");
            if removed {
                record.state = JobState::Cancelled;
                record.feed.close();
            }
            removed
        }
        JobState::Running => {
            // Cancel the supervisor's batch token: the attempt is
            // abandoned (supervisor semantics) and the runner freed.
            record.cancel.cancel();
            let record = core.jobs.get_mut(&id).expect("job registered");
            record.state = JobState::Cancelled;
            true
        }
        _ => false, // already terminal
    };
    let record = core.jobs.get(&id).expect("job registered");
    let state = record.state.label().to_owned();
    drop(core);
    if cancelled {
        eprintln!("[mapgd] job {id} cancelled");
        shared.work.notify_all();
    }
    ok(vec![
        ("id".into(), JsonValue::Number(id.to_string())),
        ("cancelled".into(), JsonValue::Bool(cancelled)),
        ("state".into(), JsonValue::String(state)),
    ])
}

fn op_fetch(shared: &Arc<Shared>, request: &JsonValue) -> JsonValue {
    let Some(id) = request.get("id").and_then(JsonValue::as_u64) else {
        return fail("fetch needs 'id'".to_owned());
    };
    let core = shared.lock();
    let Some(record) = core.jobs.get(&id) else {
        return fail(format!("unknown job {id}"));
    };
    let JobState::Done = record.state else {
        return fail(format!("job {id} is {}, not done", record.state.label()));
    };
    let payload = record.payload.clone().unwrap_or_default();
    let counters = JsonValue::Object(
        record
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), JsonValue::Number(value.to_string())))
            .collect(),
    );
    ok(vec![
        ("id".into(), JsonValue::Number(id.to_string())),
        ("replayed".into(), JsonValue::Bool(record.replayed)),
        ("payload".into(), JsonValue::String(payload)),
        ("counters".into(), counters),
    ])
}

fn op_stream(
    shared: &Arc<Shared>,
    request: &JsonValue,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let Some(id) = request.get("id").and_then(JsonValue::as_u64) else {
        return respond(stream, &fail("stream needs 'id'".to_owned()));
    };
    let cursor = request.get("from").and_then(JsonValue::as_u64).unwrap_or(0);
    let feed = {
        let core = shared.lock();
        match core.jobs.get(&id) {
            Some(record) => record.feed.clone(),
            None => return respond(stream, &fail(format!("unknown job {id}"))),
        }
    };
    respond(
        stream,
        &ok(vec![
            ("id".into(), JsonValue::Number(id.to_string())),
            ("stream".into(), JsonValue::Bool(true)),
        ]),
    )?;
    let mut cursor = cursor;
    let mut missed = 0u64;
    loop {
        let batch = feed.wait(cursor, STREAM_POLL);
        missed += batch.missed;
        for (offset, record) in batch.records.iter().enumerate() {
            let seq = cursor + batch.missed + offset as u64;
            let line = JsonValue::Object(vec![
                ("seq".into(), JsonValue::Number(seq.to_string())),
                ("at".into(), JsonValue::Number(record.at.to_string())),
                ("scope".into(), JsonValue::String(record.scope.to_string())),
                (
                    "kind".into(),
                    JsonValue::String(record.kind.record_name().to_owned()),
                ),
            ]);
            respond(stream, &line)?;
        }
        cursor = batch.next_cursor;
        if batch.closed || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    let state = {
        let core = shared.lock();
        core.jobs
            .get(&id)
            .map(|r| r.state.label())
            .unwrap_or("unknown")
    };
    respond(
        stream,
        &JsonValue::Object(vec![
            ("stream_end".into(), JsonValue::Bool(true)),
            (
                "total".into(),
                JsonValue::Number(feed.published().to_string()),
            ),
            ("missed".into(), JsonValue::Number(missed.to_string())),
            (
                "dropped".into(),
                JsonValue::Number(feed.evicted().to_string()),
            ),
            ("state".into(), JsonValue::String(state.to_owned())),
        ]),
    )
}

fn op_stats(shared: &Arc<Shared>) -> JsonValue {
    let core = shared.lock();
    let clients = JsonValue::Array(
        core.fair
            .stats()
            .into_iter()
            .map(|stats| {
                JsonValue::Object(vec![
                    ("client".into(), JsonValue::String(stats.client)),
                    ("queued".into(), JsonValue::Number(stats.queued.to_string())),
                    (
                        "inflight".into(),
                        JsonValue::Number(stats.inflight.to_string()),
                    ),
                    ("quota".into(), JsonValue::Number(stats.quota.to_string())),
                ])
            })
            .collect(),
    );
    let mut by_state: BTreeMap<&'static str, u64> = BTreeMap::new();
    for record in core.jobs.values() {
        *by_state.entry(record.state.label()).or_insert(0) += 1;
    }
    let jobs = JsonValue::Object(
        by_state
            .into_iter()
            .map(|(state, n)| (state.to_owned(), JsonValue::Number(n.to_string())))
            .collect(),
    );
    ok(vec![
        paused_field(shared.paused.load(Ordering::Acquire)),
        ("clients".into(), clients),
        ("jobs".into(), jobs),
    ])
}

fn op_quota(shared: &Arc<Shared>, request: &JsonValue) -> JsonValue {
    let Some(client) = request.get("client").and_then(JsonValue::as_str) else {
        return fail("quota needs 'client'".to_owned());
    };
    let Some(quota) = request.get("quota").and_then(JsonValue::as_usize) else {
        return fail("quota needs 'quota' (>= 1)".to_owned());
    };
    if quota == 0 {
        return fail("quota must be >= 1".to_owned());
    }
    shared.lock().fair.set_quota(client, quota);
    shared.work.notify_all();
    ok(vec![
        ("client".into(), JsonValue::String(client.to_owned())),
        ("quota".into(), JsonValue::Number(quota.to_string())),
    ])
}

fn status_fields(id: u64, record: &JobRecord) -> Vec<(String, JsonValue)> {
    let mut fields = vec![
        ("id".into(), JsonValue::Number(id.to_string())),
        (
            "state".into(),
            JsonValue::String(record.state.label().to_owned()),
        ),
        ("client".into(), JsonValue::String(record.client.clone())),
        (
            "experiment".into(),
            JsonValue::String(record.spec.experiment.id.to_owned()),
        ),
        (
            "scale".into(),
            JsonValue::String(record.spec.scale.name().to_owned()),
        ),
        (
            "format".into(),
            JsonValue::String(record.spec.format.name().to_owned()),
        ),
        (
            "priority".into(),
            JsonValue::Number(record.priority.to_string()),
        ),
        (
            "attempts".into(),
            JsonValue::Number(record.attempts.to_string()),
        ),
        ("replayed".into(), JsonValue::Bool(record.replayed)),
        (
            "terminal".into(),
            JsonValue::Bool(record.state.is_terminal()),
        ),
    ];
    if let Some(seq) = record.started_seq {
        fields.push(("started_seq".into(), JsonValue::Number(seq.to_string())));
    }
    if let JobState::Failed(reason) = &record.state {
        fields.push(("error".into(), JsonValue::String(reason.clone())));
    }
    fields
}

fn paused_field(paused: bool) -> (String, JsonValue) {
    ("paused".into(), JsonValue::Bool(paused))
}

fn ok(mut fields: Vec<(String, JsonValue)>) -> JsonValue {
    fields.insert(0, ("ok".into(), JsonValue::Bool(true)));
    JsonValue::Object(fields)
}

fn fail(error: String) -> JsonValue {
    JsonValue::Object(vec![
        ("ok".into(), JsonValue::Bool(false)),
        ("error".into(), JsonValue::String(error)),
    ])
}

/// Writes one response line (the protocol is line-delimited).
fn respond(stream: &mut TcpStream, value: &JsonValue) -> std::io::Result<()> {
    let mut line = write_json(value);
    line.push('\n');
    stream.write_all(line.as_bytes())
}
