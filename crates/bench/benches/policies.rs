//! Criterion bench: end-to-end simulation throughput per policy.
//!
//! Measures how fast the full stack (workload → cores → hierarchy →
//! controller) simulates 50 k instructions under each comparison policy —
//! the cost of one cell of the R-T3/R-F2/R-F3 matrices.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mapg::{PolicyKind, SimConfig, Simulation};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for policy in PolicyKind::COMPARISON_SET {
        group.bench_with_input(
            BenchmarkId::new("mem_bound_50k", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let config = SimConfig::default().with_instructions(50_000);
                    black_box(Simulation::new(config, policy).run())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
