//! Criterion bench: cost of the observability layer.
//!
//! Three configurations of the same 50 k-instruction MAPG run:
//! observability off (every `ObsHandle` call is one `None` branch — the
//! acceptance bar is <2% overhead vs. the pre-instrumentation simulator,
//! which this group tracks as the baseline cell), metrics only, and full
//! trace + metrics capture. Plus a micro-bench of the disabled handle's
//! `emit`/`count`/`observe` calls themselves.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_obs::{EventKind, ObsHandle, Scope};

fn base() -> SimConfig {
    SimConfig::default().with_instructions(50_000)
}

fn bench_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("sim_50k/disabled", |b| {
        b.iter(|| black_box(Simulation::new(base(), PolicyKind::Mapg).run()))
    });
    group.bench_function("sim_50k/metrics", |b| {
        b.iter(|| black_box(Simulation::new(base().with_metrics(), PolicyKind::Mapg).run()))
    });
    group.bench_function("sim_50k/trace+metrics", |b| {
        b.iter(|| {
            black_box(Simulation::new(base().with_trace().with_metrics(), PolicyKind::Mapg).run())
        })
    });
    group.bench_function("disabled_handle/emit+count+observe", |b| {
        let obs = ObsHandle::disabled();
        b.iter(|| {
            for cycle in 0..1_000u64 {
                obs.emit(cycle, Scope::Core(0), EventKind::StallBegin);
                obs.count("stalls", 1);
                obs.observe("stall_length", cycle);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
