//! Criterion bench: the substrate components in isolation.
//!
//! Tracks the hot paths every experiment amortizes: cache lookups, DRAM
//! scheduling, MSHR management, synthetic event generation and predictor
//! updates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mapg::{HistoryTablePredictor, MissLatencyPredictor};
use mapg_cpu::{CoreId, StallCause, StallInfo};
use mapg_mem::{Cache, CacheConfig, Dram, DramConfig, MshrFile};
use mapg_trace::{EventSource, SyntheticWorkload, WorkloadProfile};
use mapg_units::{Cycle, Cycles};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l1_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut addr: u64 = 0;
        b.iter(|| {
            addr = addr.wrapping_add(72) & 0xF_FFFF;
            black_box(cache.access(addr, false))
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/access_schedule", |b| {
        let mut dram = Dram::new(DramConfig::ddr3_1333());
        let mut now = Cycle::ZERO;
        let mut addr: u64 = 0;
        b.iter(|| {
            addr = addr.wrapping_add(4096) & 0xFFF_FFFF;
            let (done, outcome) = dram.access(now, addr, false);
            now = now.max(done - Cycles::new(50));
            black_box(outcome)
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("mshr/lookup_commit_retire", |b| {
        let mut mshrs = MshrFile::new(16);
        let mut line: u64 = 0;
        let mut now = Cycle::ZERO;
        b.iter(|| {
            line += 1;
            now += Cycles::new(20);
            if let mapg_mem::MshrOutcome::Allocated = mshrs.lookup(now, line) {
                mshrs.commit(line, now + Cycles::new(150));
            }
            black_box(mshrs.capacity())
        });
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("trace/synthetic_event", |b| {
        let profile = WorkloadProfile::mem_bound("bench");
        let mut workload = SyntheticWorkload::new(&profile, 7);
        b.iter(|| black_box(workload.next_event()));
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("predictor/history_table_cycle", |b| {
        let mut predictor = HistoryTablePredictor::hardware_default();
        let mut pc = 0u64;
        let info_template = StallInfo {
            core: CoreId(0),
            start: Cycle::new(0),
            data_ready: Cycle::new(200),
            pc: 0,
            outstanding: 1,
            cause: StallCause::Dependency,
        };
        b.iter(|| {
            pc = (pc + 4) % 256;
            let info = StallInfo {
                pc,
                ..info_template
            };
            let predicted = predictor.predict(&info);
            predictor.observe(&info, Cycles::new(180));
            black_box(predicted)
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_dram,
    bench_mshr,
    bench_workload,
    bench_predictor
);
criterion_main!(benches);
