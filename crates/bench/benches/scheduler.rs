//! Criterion bench: cluster stepping cost, event-wheel vs reference.
//!
//! Replays identical basic-block-granularity recordings (the pintool-style
//! trace shape `Core::step_batched` folds hardest) through the live
//! [`Cluster`] and the retained seed [`ReferenceCluster`] at 1/4/16/64
//! cores. The live-vs-reference pairing at each width isolates the
//! scheduler + batching + flattened-cache overhaul from workload cost;
//! the width sweep shows how the O(log N) wheel scales where the
//! reference's O(N) min-scan does not.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler, ReferenceCluster};
use mapg_mem::HierarchyConfig;
use mapg_trace::{RecordedTrace, WorkloadProfile};

const CORE_COUNTS: [usize; 4] = [1, 4, 16, 64];
const INSTRUCTIONS_PER_CORE: u64 = 20_000;
const BLOCK_QUANTUM: u64 = 4;

fn record_traces(cores: usize) -> Vec<RecordedTrace> {
    let profile = WorkloadProfile::mixed("bench_sched");
    (0..cores)
        .map(|i| {
            let mut workload = mapg_trace::SyntheticWorkload::new(&profile, 9_000 + i as u64);
            RecordedTrace::record(&mut workload, INSTRUCTIONS_PER_CORE)
                .quantize_compute(BLOCK_QUANTUM)
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for cores in CORE_COUNTS {
        let traces = record_traces(cores);
        group.bench_with_input(
            BenchmarkId::new("event_wheel", cores),
            &traces,
            |b, traces| {
                b.iter(|| {
                    let mut cluster = Cluster::new(
                        CoreConfig::baseline(),
                        HierarchyConfig::baseline(),
                        traces.iter().map(|t| t.replay()).collect(),
                    );
                    cluster.run(INSTRUCTIONS_PER_CORE, &mut PassiveHandler);
                    black_box(cluster.stats().makespan_cycles())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", cores),
            &traces,
            |b, traces| {
                b.iter(|| {
                    let mut cluster = ReferenceCluster::new(
                        CoreConfig::baseline(),
                        HierarchyConfig::baseline(),
                        traces.iter().map(|t| t.replay()).collect(),
                    );
                    cluster.run(INSTRUCTIONS_PER_CORE, &mut PassiveHandler);
                    black_box(cluster.stats().makespan_cycles())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
