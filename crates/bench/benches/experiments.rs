//! Criterion bench: one target per reconstructed experiment.
//!
//! Each benchmark regenerates its table/figure at smoke scale, so `cargo
//! bench` both exercises every experiment end-to-end and tracks the
//! harness's runtime over time. The paper-scale numbers come from the
//! `experiments` binary.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use mapg_bench::{experiments, Scale};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    // Smoke-scale experiments take 0.1–3 s per iteration; the default
    // 3 s warm-up + 5 s measurement would stretch the full sweep past
    // half an hour. Ten samples in a tight window is plenty to track the
    // harness's runtime.
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for experiment in experiments::all() {
        group.bench_function(experiment.id, |b| {
            b.iter(|| black_box((experiment.run)(Scale::Smoke)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
