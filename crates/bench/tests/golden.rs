//! Golden-table regression suite.
//!
//! Every registered experiment is rendered at smoke scale exactly the way
//! `experiments --csv` renders it, and compared byte-for-byte against the
//! checked-in golden copy under `tests/golden/`. Any behavioural change to
//! the simulator — policy, substrate, fault model — shows up here as a
//! diff that has to be inspected and re-blessed.
//!
//! To regenerate after an intentional change (see DESIGN.md §8):
//!
//! ```bash
//! UPDATE_GOLDEN=1 cargo test -p mapg-bench --test golden
//! ```

#![deny(unused)]

use std::fmt::Write as _;
use std::path::PathBuf;

use mapg_bench::experiments::{self, Experiment};
use mapg_bench::Scale;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Renders one experiment exactly as `experiments --csv --scale smoke`
/// prints it (per-table header line + CSV body).
fn render(experiment: &Experiment) -> String {
    let tables = (experiment.run)(Scale::Smoke);
    let mut out = String::new();
    for table in &tables {
        writeln!(out, "# {} — {}", table.id(), table.title()).expect("string write");
        out.push_str(&table.to_csv());
    }
    out
}

/// First line where two renderings differ, with both versions.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}: expected `{e}`, got `{a}`", i + 1);
        }
    }
    format!(
        "line counts differ: expected {}, got {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn every_experiment_matches_its_golden_table() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let all = experiments::all();
    assert_eq!(all.len(), 20, "registry size changed; update this suite");

    // Render in parallel (bit-identical at any job count — see the
    // parallel-determinism suite); compare serially for readable failures.
    let rendered = mapg_pool::Pool::new(mapg_pool::default_jobs())
        .map(all, |experiment| (experiment, render(&experiment)));

    let mut problems = Vec::new();
    for (experiment, actual) in rendered {
        let path = golden_dir().join(format!("{}.csv", experiment.id.to_lowercase()));
        if update {
            std::fs::write(&path, &actual)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => problems.push(format!(
                "{}: output drifted from {} — {}",
                experiment.id,
                path.display(),
                first_diff(&expected, &actual)
            )),
            Err(e) => problems.push(format!(
                "{}: cannot read {} ({e})",
                experiment.id,
                path.display()
            )),
        }
    }
    assert!(
        problems.is_empty(),
        "golden tables out of sync (re-bless with \
         `UPDATE_GOLDEN=1 cargo test -p mapg-bench --test golden` \
         after verifying the change is intentional):\n{}",
        problems.join("\n")
    );
}

#[test]
fn golden_directory_has_no_strays() {
    let known: Vec<String> = experiments::all()
        .iter()
        .map(|e| format!("{}.csv", e.id.to_lowercase()))
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir exists") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            known.contains(&name),
            "stray golden file '{name}' matches no registered experiment"
        );
    }
}
