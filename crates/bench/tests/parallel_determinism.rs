//! Serial-vs-parallel bit-equality: determinism is enforced, not assumed.
//!
//! Every registered experiment at smoke scale must render byte-identical
//! CSV whether its inner suite fan-out runs on one worker or many — the
//! acceptance bar for the parallel engine (DESIGN.md §7).

#![deny(unused)]

use mapg_bench::{experiments, Scale};

/// Renders every table of every experiment with the ambient job count
/// pinned to `jobs`.
fn render_all(jobs: usize) -> Vec<(String, String)> {
    experiments::all()
        .into_iter()
        .map(|experiment| {
            let tables = mapg_pool::with_default_jobs(jobs, || (experiment.run)(Scale::Smoke));
            let csv: String = tables
                .iter()
                .map(|t| format!("# {}\n{}", t.id(), t.to_csv()))
                .collect();
            (experiment.id.to_owned(), csv)
        })
        .collect()
}

#[test]
fn every_experiment_is_bit_identical_serial_vs_parallel() {
    let serial = render_all(1);
    let parallel = render_all(4);
    assert_eq!(serial.len(), parallel.len());
    for ((id, csv_serial), (id_p, csv_parallel)) in serial.iter().zip(&parallel) {
        assert_eq!(id, id_p);
        assert_eq!(
            csv_serial, csv_parallel,
            "{id}: parallel CSV diverged from serial"
        );
    }
}
