//! End-to-end tests of the `mapgd` daemon and `mapg-client` library:
//! multi-client fairness, quotas, cancellation, byte-identity of a
//! daemon-fetched CSV against the `experiments` binary and the
//! committed goldens, SIGKILL-the-daemon + journal resume (including
//! stale-lock takeover), and streaming reconciliation against the
//! final metrics counters (the PR 3 invariant, over the wire).

#![deny(unused)]

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use mapg_bench::{Client, Daemon, DaemonConfig};

const WAIT: Duration = Duration::from_secs(300);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mapg-daemon-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// An in-process daemon bound to a free port, plus a client for it.
fn start(config: DaemonConfig) -> (Daemon, Client) {
    let daemon = Daemon::start(config).expect("daemon starts");
    let client = Client::new(daemon.local_addr().to_string());
    (daemon, client)
}

fn stop(daemon: Daemon, client: &Client) {
    client.shutdown().expect("shutdown accepted");
    daemon.wait();
}

/// Round-robin across clients, FIFO within a client, priority on top:
/// with one runner and a paused start, the dispatch order
/// (`started_seq`) is fully deterministic.
#[test]
fn dispatch_is_fair_across_clients_and_respects_priority() {
    let (daemon, client) = start(DaemonConfig {
        max_jobs: 1,
        paused: true,
        ..DaemonConfig::default()
    });

    // Three tenants, all at priority 0: a has three jobs, b and c one
    // each. Round-robin must interleave a's backlog behind b and c.
    let a1 = client.submit("a", "R-T1", "smoke", "csv", 0).unwrap();
    let a2 = client.submit("a", "R-T2", "smoke", "csv", 0).unwrap();
    let a3 = client.submit("a", "R-T3", "smoke", "csv", 0).unwrap();
    let b1 = client.submit("b", "R-T1", "smoke", "csv", 0).unwrap();
    let c1 = client.submit("c", "R-T1", "smoke", "csv", 0).unwrap();
    // A latecomer at priority 9 jumps every queued priority-0 job.
    let urgent = client.submit("b", "R-T4", "smoke", "csv", 9).unwrap();

    client.resume().expect("resume accepted");
    let ids = [a1, a2, a3, b1, c1, urgent];
    for id in ids {
        let status = client.wait_terminal(id, WAIT).expect("job finishes");
        assert_eq!(status.state, "done", "job {id}: {status:?}");
    }

    let seq = |id| {
        client
            .status(id)
            .expect("status")
            .started_seq
            .expect("terminal job has started_seq")
    };
    let order: Vec<u64> = ids.iter().map(|&id| seq(id)).collect();
    // urgent (priority 9, client b) first; the round-robin cursor then
    // resumes *after* b: c1, a1, b1, a2, a3.
    assert_eq!(
        order,
        vec![2, 4, 5, 3, 1, 0],
        "dispatch order must be urgent, c1, a1, b1, a2, a3 (ids {ids:?})"
    );
    stop(daemon, &client);
}

/// A queued job cancels out of the queue; terminal jobs refuse; the
/// cancelled job's stream closes with state `cancelled`.
#[test]
fn cancellation_hits_queued_jobs_and_is_idempotent() {
    let (daemon, client) = start(DaemonConfig {
        max_jobs: 1,
        paused: true,
        ..DaemonConfig::default()
    });
    let keep = client.submit("a", "R-T1", "smoke", "csv", 0).unwrap();
    let doomed = client.submit("a", "R-T2", "smoke", "csv", 0).unwrap();

    assert!(client.cancel(doomed).expect("cancel accepted"));
    let status = client.status(doomed).expect("status");
    assert_eq!(status.state, "cancelled");
    assert!(status.terminal);
    // Idempotent: a second cancel changes nothing.
    assert!(!client.cancel(doomed).expect("cancel accepted"));

    // The cancelled feed is closed: a stream subscription returns
    // immediately instead of waiting for a job that will never run.
    let end = client.stream(doomed, 0, |_| {}).expect("stream");
    assert_eq!(end.state, "cancelled");
    assert_eq!(end.total, 0);

    client.resume().expect("resume accepted");
    let status = client.wait_terminal(keep, WAIT).expect("job finishes");
    assert_eq!(status.state, "done");
    // Done jobs are not cancellable either.
    assert!(!client.cancel(keep).expect("cancel accepted"));
    stop(daemon, &client);
}

/// An in-flight quota of 1 keeps a tenant's jobs serialized even when
/// runners are free: the daemon never runs two of its jobs at once.
#[test]
fn per_client_quota_limits_concurrent_jobs() {
    let (daemon, client) = start(DaemonConfig {
        max_jobs: 2,
        default_quota: 1,
        paused: true,
        ..DaemonConfig::default()
    });
    // Two simulating jobs — long enough (debug build) that a quota
    // violation would be observable as two concurrent running jobs.
    let j1 = client.submit("a", "R-F1", "smoke", "csv", 0).unwrap();
    let j2 = client.submit("a", "R-F2", "smoke", "csv", 0).unwrap();
    client.resume().expect("resume accepted");

    let deadline = Instant::now() + WAIT;
    loop {
        let stats = client.stats().expect("stats");
        let running = stats
            .get("jobs")
            .and_then(|jobs| jobs.get("running"))
            .and_then(mapg::fuzz::JsonValue::as_u64)
            .unwrap_or(0);
        assert!(running <= 1, "quota 1 must never admit 2 running jobs");
        let s1 = client.status(j1).expect("status");
        let s2 = client.status(j2).expect("status");
        if s1.terminal && s2.terminal {
            assert_eq!(s1.state, "done");
            assert_eq!(s2.state, "done");
            break;
        }
        assert!(Instant::now() < deadline, "jobs did not finish in time");
        std::thread::sleep(Duration::from_millis(5));
    }
    // FIFO under quota: j1 dispatched before j2.
    let seq1 = client.status(j1).unwrap().started_seq.unwrap();
    let seq2 = client.status(j2).unwrap().started_seq.unwrap();
    assert!(seq1 < seq2, "quota must preserve the tenant's FIFO order");
    stop(daemon, &client);
}

/// The acceptance gate: a daemon-fetched CSV is byte-identical to the
/// `experiments` binary's `--out-dir` file for the same config, and to
/// the committed golden.
#[test]
fn daemon_payload_matches_experiments_binary_and_golden() {
    let dir = temp_dir("byte-identity");
    let out_dir = dir.join("out");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--scale",
            "smoke",
            "--csv",
            "--out-dir",
            out_dir.to_str().unwrap(),
            "rt1",
            "rf5",
        ])
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success(), "{output:?}");

    let (daemon, client) = start(DaemonConfig::default());
    for id in ["R-T1", "R-F5"] {
        let job = client.submit("ci", id, "smoke", "csv", 0).unwrap();
        let status = client.wait_terminal(job, WAIT).expect("job finishes");
        assert_eq!(status.state, "done", "{status:?}");
        let fetched = client.fetch(job).expect("fetch");
        let reference = std::fs::read_to_string(out_dir.join(format!("{id}.csv")))
            .expect("experiments binary wrote the CSV");
        assert_eq!(
            fetched.payload, reference,
            "daemon {id} payload must be byte-identical to the experiments binary"
        );
    }
    // And against the committed golden, closing the loop to the repo's
    // regression corpus.
    let job = client.submit("ci", "rt1", "smoke", "csv", 0).unwrap();
    client.wait_terminal(job, WAIT).expect("job finishes");
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/r-t1.csv"),
    )
    .expect("committed golden");
    assert_eq!(client.fetch(job).expect("fetch").payload, golden);
    stop(daemon, &client);
    std::fs::remove_dir_all(&dir).ok();
}

fn spawn_mapgd(
    journal: &std::path::Path,
    port_file: &std::path::Path,
    log: &std::path::Path,
) -> Child {
    Command::new(env!("CARGO_BIN_EXE_mapgd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--max-jobs",
            "1",
            "--journal",
            journal.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::fs::File::create(log).expect("log file"))
        .spawn()
        .expect("mapgd binary should spawn")
}

fn read_port_file(port_file: &std::path::Path, child: &mut Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.is_empty() {
                return addr;
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("mapgd exited before listening: {status}");
        }
        assert!(Instant::now() < deadline, "mapgd wrote no port file");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Kill the daemon mid-job (SIGKILL — the journal lock sentinel stays
/// behind with a dead pid), restart on the same journal, and prove:
/// the completed job replays byte-identically, the interrupted job
/// re-runs, and the stale lock was taken over.
#[test]
fn sigkill_daemon_then_restart_resumes_from_journal() {
    let dir = temp_dir("kill-resume");
    let journal = dir.join("journal.json");
    let port_file = dir.join("port");

    let mut child = spawn_mapgd(&journal, &port_file, &dir.join("mapgd-1.log"));
    let client = Client::new(read_port_file(&port_file, &mut child).trim().to_owned());
    client.ping().expect("daemon answers");

    // One job to completion: journaled.
    let done = client.submit("a", "R-T1", "smoke", "csv", 0).unwrap();
    let status = client.wait_terminal(done, WAIT).expect("job finishes");
    assert_eq!(status.state, "done");
    assert!(!status.replayed, "first run is fresh");
    let reference = client.fetch(done).expect("fetch").payload;

    // A second, simulating job: kill the daemon while it runs (or, if
    // it wins the race and finishes, the restart replays it — the
    // byte-identity assertion below holds either way).
    let victim = client.submit("a", "R-F1", "smoke", "csv", 0).unwrap();
    let deadline = Instant::now() + WAIT;
    loop {
        let state = client.status(victim).expect("status").state;
        if state == "running" || state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "victim never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");
    assert!(
        journal.with_file_name("journal.json.lock").exists(),
        "a SIGKILLed daemon must leave its lock sentinel behind"
    );

    // Restart on the same journal: stale-lock takeover + replay.
    std::fs::remove_file(&port_file).ok();
    let mut child = spawn_mapgd(&journal, &port_file, &dir.join("mapgd-2.log"));
    let client = Client::new(read_port_file(&port_file, &mut child).trim().to_owned());

    let replay = client.submit("a", "R-T1", "smoke", "csv", 0).unwrap();
    let status = client.wait_terminal(replay, WAIT).expect("job finishes");
    assert_eq!(status.state, "done");
    assert!(status.replayed, "journaled job must replay, not re-run");
    assert_eq!(
        client.fetch(replay).expect("fetch").payload,
        reference,
        "replayed payload must be byte-identical to the original run"
    );

    let rerun = client.submit("a", "R-F1", "smoke", "csv", 0).unwrap();
    let status = client.wait_terminal(rerun, WAIT).expect("job finishes");
    assert_eq!(status.state, "done");
    let fetched = client.fetch(rerun).expect("fetch");
    assert!(
        fetched.payload.starts_with("# R-F1 — "),
        "{}",
        fetched.payload
    );

    client.shutdown().expect("shutdown accepted");
    let deadline = Instant::now() + Duration::from_secs(60);
    while child.try_wait().expect("try_wait").is_none() {
        assert!(Instant::now() < deadline, "mapgd did not exit on shutdown");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The PR 3 reconciliation invariant, over the wire: the number of
/// `sleep-enter` events streamed from a job's feed equals the job's
/// final `gates + regates` counters — the stream is a faithful,
/// incremental view of the same activity the metrics aggregate.
#[test]
fn streamed_events_reconcile_with_final_metrics() {
    let (daemon, client) = start(DaemonConfig {
        max_jobs: 1,
        // Roomy feed: the invariant needs a lossless stream.
        feed_capacity: 1 << 22,
        ..DaemonConfig::default()
    });
    // R-F5 runs the MAPG gating policy, so the stream carries
    // sleep-enter events (R-F1 only measures ungated stalls).
    let job = client.submit("a", "R-F5", "smoke", "csv", 0).unwrap();

    // Subscribe while the job runs (the stream drains incrementally and
    // only ends when the feed closes at job completion).
    let mut sleep_enters = 0u64;
    let mut total_seen = 0u64;
    let end = client
        .stream(job, 0, |event| {
            total_seen += 1;
            if event.kind == "sleep-enter" {
                sleep_enters += 1;
            }
        })
        .expect("stream");
    assert_eq!(end.state, "done");
    assert_eq!(end.missed, 0, "subscriber started at cursor 0");
    assert_eq!(end.dropped, 0, "feed must not evict at smoke scale");
    assert_eq!(end.total, total_seen, "every published record was seen");
    assert!(sleep_enters > 0, "a gating run must gate at least once");

    let counters = client.fetch(job).expect("fetch").counters;
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(
        sleep_enters,
        counter("gates") + counter("regates"),
        "streamed sleep-enter events must equal the final gate counters"
    );
    stop(daemon, &client);
}
