//! End-to-end tests of the `experiments` binary: argument validation,
//! duplicate-id dedup, and `--jobs` byte-equality of stdout.

#![deny(unused)]

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary should spawn")
}

#[test]
fn help_mentions_every_flag_and_the_full_alias() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "--scale",
        "full",
        "--csv",
        "--jobs",
        "--manifest",
        "--metrics",
        "--list",
    ] {
        assert!(text.contains(needle), "help is missing '{needle}': {text}");
    }
}

#[test]
fn scale_error_mentions_the_full_alias() {
    let out = run(&["--scale", "nope"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("full"), "scale error omits the alias: {err}");
}

#[test]
fn full_is_accepted_as_a_scale() {
    // --list short-circuits before any run, but --scale full must parse.
    let out = run(&["--scale", "full", "--list"]);
    assert!(out.status.success(), "{:?}", out);
}

#[test]
fn unknown_flags_are_rejected_as_flags() {
    for flag in ["--cvs", "-x", "--scale=quick"] {
        let out = run(&[flag]);
        assert!(!out.status.success(), "'{flag}' should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains(&format!("unknown flag '{flag}'")),
            "'{flag}' mis-reported: {err}"
        );
        assert!(err.contains("usage:"), "no usage line for '{flag}': {err}");
        assert!(
            !err.contains("unknown experiment"),
            "'{flag}' fell through to experiment lookup: {err}"
        );
    }
}

#[test]
fn unknown_experiment_is_still_reported() {
    let out = run(&["nope99"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment 'nope99'"), "{err}");
}

#[test]
fn bad_jobs_values_are_rejected() {
    for args in [&["--jobs"][..], &["--jobs", "0"], &["--jobs", "many"]] {
        let out = run(args);
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn duplicate_ids_run_once_with_a_warning() {
    let out = run(&["--scale", "smoke", "--csv", "rt1", "rt1", "R-T1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stdout.matches("# R-T1 — ").count(),
        1,
        "duplicate selection printed more than once: {stdout}"
    );
    assert!(stdout.contains("1 experiment(s)"), "{stdout}");
    assert_eq!(
        stderr.matches("warning: duplicate experiment").count(),
        2,
        "expected one warning per duplicate: {stderr}"
    );
}

#[test]
fn jobs_do_not_change_stdout_bytes() {
    // A slice of the registry that exercises SuiteRunner fan-out (rt3),
    // direct sweeps (rf5) and the token/many-core path (rf8).
    let ids = ["rt3", "rf5", "rf8"];
    let serial = run(&[&["--scale", "smoke", "--csv", "--jobs", "1"][..], &ids].concat());
    let parallel = run(&[&["--scale", "smoke", "--csv", "--jobs", "8"][..], &ids].concat());
    assert!(serial.status.success() && parallel.status.success());
    assert!(!serial.stdout.is_empty());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs 8 stdout diverged from --jobs 1"
    );
}

#[test]
fn manifest_records_the_run() {
    let dir = std::env::temp_dir().join("mapg-experiments-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.json");
    let out = run(&[
        "--scale",
        "smoke",
        "--csv",
        "--jobs",
        "2",
        "--manifest",
        path.to_str().unwrap(),
        "rt1",
        "rf5",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for needle in [
        "\"schema\": 4",
        "\"outcome\": \"ok\"",
        "\"attempts\": 1",
        "\"metrics\": {",
        "\"counters\": {",
        "\"gates\":",
        "\"scale\": \"smoke\"",
        "\"jobs\": 2",
        "\"id\": \"R-T1\"",
        "\"id\": \"R-F5\"",
        "\"wall_ms\":",
        "\"rows\":",
    ] {
        assert!(json.contains(needle), "manifest missing '{needle}': {json}");
    }
}

#[test]
fn manifest_write_failure_is_a_clean_error() {
    let out = run(&[
        "--scale",
        "smoke",
        "--manifest",
        "/nonexistent-dir/manifest.json",
        "rt1",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot write manifest"), "{err}");
}

#[test]
fn metrics_file_records_aggregated_counters() {
    let dir = std::env::temp_dir().join("mapg-experiments-metrics-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let out = run(&[
        "--scale",
        "smoke",
        "--csv",
        "--metrics",
        path.to_str().unwrap(),
        "rt3",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for needle in [
        "\"counters\": {",
        "\"histograms\": {",
        "\"gates\":",
        "\"core_stalls\":",
        "\"gated_duration\":",
        "\"wake_latency\":",
    ] {
        assert!(json.contains(needle), "metrics missing '{needle}': {json}");
    }
    // The aggregate records neither wall times nor the job count — it must
    // stay byte-stable across runs.
    assert!(!json.contains("wall_ms"), "{json}");
    assert!(!json.contains("jobs"), "{json}");
}

#[test]
fn metrics_file_is_byte_identical_across_job_counts() {
    let dir = std::env::temp_dir().join("mapg-experiments-metrics-jobs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let serial_path = dir.join("serial.json");
    let parallel_path = dir.join("parallel.json");
    let ids = ["rt3", "rf8"];
    let serial = run(&[
        &[
            "--scale",
            "smoke",
            "--csv",
            "--jobs",
            "1",
            "--metrics",
            serial_path.to_str().unwrap(),
        ][..],
        &ids,
    ]
    .concat());
    let parallel = run(&[
        &[
            "--scale",
            "smoke",
            "--csv",
            "--jobs",
            "8",
            "--metrics",
            parallel_path.to_str().unwrap(),
        ][..],
        &ids,
    ]
    .concat());
    assert!(serial.status.success() && parallel.status.success());
    let a = std::fs::read(&serial_path).unwrap();
    let b = std::fs::read(&parallel_path).unwrap();
    std::fs::remove_file(&serial_path).ok();
    std::fs::remove_file(&parallel_path).ok();
    assert!(!a.is_empty());
    assert_eq!(a, b, "--jobs 8 metrics diverged from --jobs 1");
}

#[test]
fn metrics_flag_requires_a_path_and_a_writable_target() {
    let out = run(&["--metrics"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--metrics needs an output path"), "{err}");

    let out = run(&[
        "--scale",
        "smoke",
        "--metrics",
        "/nonexistent-dir/metrics.json",
        "rt1",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot write metrics"), "{err}");
}

/// `mapg-fuzz` end-to-end: a tiny clean campaign exits 0 and, with
/// `--manifest`, records schema-4 fuzz provenance (seed, scenario count,
/// executed count, empty findings list) with no experiment entries.
#[test]
fn fuzz_campaign_writes_a_provenance_manifest() {
    let dir = std::env::temp_dir().join("mapg-fuzz-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("manifest.json");
    let out = Command::new(env!("CARGO_BIN_EXE_mapg-fuzz"))
        .args([
            "--scenarios",
            "3",
            "--seed",
            "1",
            "--jobs",
            "2",
            "--manifest",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("mapg-fuzz binary should spawn");
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean: 3 scenario(s)"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    for needle in [
        "\"schema\": 4",
        "\"fuzz\": {",
        "\"seed\": 1",
        "\"scenarios\": 3",
        "\"executed\": 3",
        "\"findings\": []",
        "\"experiments\": []",
    ] {
        assert!(json.contains(needle), "manifest missing '{needle}': {json}");
    }
}

#[test]
fn fuzz_rejects_bad_arguments() {
    for args in [
        &["--scenarios", "0"][..],
        &["--seed", "not-a-number"],
        &["--manifest"],
        &["--frobnicate"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_mapg-fuzz"))
            .args(args)
            .output()
            .expect("mapg-fuzz binary should spawn");
        assert!(!out.status.success(), "{args:?} should be rejected");
    }
}
