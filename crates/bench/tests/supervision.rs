//! End-to-end tests of supervised execution and checkpoint/resume in
//! the `experiments` and `mapg-fuzz` binaries: quarantine of injected
//! panics and hangs, retry of flaky jobs, SIGKILL + `--resume`
//! byte-identity, and the journal digest proving completed work is
//! never re-executed.

#![deny(unused)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn run_experiments(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary should spawn")
}

fn run_fuzz(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mapg-fuzz"))
        .args(args)
        .output()
        .expect("mapg-fuzz binary should spawn")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mapg-supervision-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// A suite with one injected panicking job and one injected hung job
/// completes: both are quarantined in the manifest (schema v4), the
/// exit is nonzero and names the failed entries, and the surviving
/// experiments' CSV files are byte-identical to a clean run's.
#[test]
fn injected_panic_and_hang_are_quarantined_without_poisoning_the_suite() {
    let dir = temp_dir("quarantine");
    let clean_out = dir.join("clean");
    let faulty_out = dir.join("faulty");
    let manifest = dir.join("manifest.json");
    let ids = ["rt1", "rf5", "rt3"];

    let clean = run_experiments(
        &[
            &[
                "--scale",
                "smoke",
                "--csv",
                "--jobs",
                "2",
                "--out-dir",
                clean_out.to_str().unwrap(),
            ][..],
            &ids,
        ]
        .concat(),
    );
    assert!(clean.status.success(), "{clean:?}");

    let faulty = run_experiments(
        &[
            &[
                "--scale",
                "smoke",
                "--csv",
                "--jobs",
                "2",
                "--out-dir",
                faulty_out.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--inject-panic",
                "rt1",
                "--inject-hang",
                "rf5",
                // Generous vs the ~0.1 s the real smoke jobs take, small
                // enough to keep the test quick.
                "--deadline-ms",
                "8000",
            ][..],
            &ids,
        ]
        .concat(),
    );
    assert!(
        !faulty.status.success(),
        "a suite with failures must exit nonzero"
    );
    let stderr = String::from_utf8(faulty.stderr).unwrap();
    assert!(stderr.contains("failed entries:"), "{stderr}");
    assert!(stderr.contains("R-T1 (panicked"), "{stderr}");
    assert!(stderr.contains("R-F5 (timed-out"), "{stderr}");
    assert!(stderr.contains("1 ok, 2 failed"), "{stderr}");

    let json = read(&manifest);
    assert!(json.contains("\"schema\": 4"), "{json}");
    assert!(json.contains("\"outcome\": \"panicked\""), "{json}");
    assert!(json.contains("\"outcome\": \"timed-out\""), "{json}");
    assert!(json.contains("\"outcome\": \"ok\""), "{json}");

    // The survivor is byte-identical to the clean run; the quarantined
    // jobs left no output files.
    assert_eq!(
        read(&clean_out.join("R-T3.csv")),
        read(&faulty_out.join("R-T3.csv")),
        "quarantine must not perturb surviving experiments"
    );
    assert!(!faulty_out.join("R-T1.csv").exists());
    assert!(!faulty_out.join("R-F5.csv").exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// A flaky job (panics on attempt 1 only) succeeds under `--retries 2`
/// and the manifest records the extra attempt.
#[test]
fn flaky_jobs_are_retried_and_attempts_recorded() {
    let dir = temp_dir("flaky");
    let manifest = dir.join("manifest.json");
    let out = run_experiments(&[
        "--scale",
        "smoke",
        "--csv",
        "--jobs",
        "2",
        "--manifest",
        manifest.to_str().unwrap(),
        "--inject-flaky",
        "rt1",
        "--retries",
        "2",
        "rt1",
        "rf5",
    ]);
    assert!(out.status.success(), "{out:?}");
    let json = read(&manifest);
    assert!(json.contains("\"attempts\": 2"), "{json}");
    assert!(json.contains("\"attempts\": 1"), "{json}");
    assert!(!json.contains("\"outcome\": \"panicked\""), "{json}");

    // Without the retry budget the same injection fails the suite.
    let no_retry = run_experiments(&["--scale", "smoke", "--csv", "--inject-flaky", "rt1", "rt1"]);
    assert!(!no_retry.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

fn journaled_args<'a>(
    journal_flag: &'a str,
    journal: &'a str,
    out_dir: &'a str,
    manifest: &'a str,
    ids: &[&'a str],
) -> Vec<&'a str> {
    [
        &[
            "--scale",
            "smoke",
            "--csv",
            "--jobs",
            "2",
            journal_flag,
            journal,
            "--out-dir",
            out_dir,
            "--manifest",
            manifest,
        ][..],
        ids,
    ]
    .concat()
}

/// Kill a journaled run mid-suite (SIGKILL, no cleanup), resume from
/// its journal, and prove the resumed outputs are byte-identical to an
/// uninterrupted journaled run — CSVs and manifest alike. A stale
/// partial `*.tmp` next to the journal must not disturb the resume.
#[test]
fn sigkill_then_resume_reproduces_byte_identical_outputs() {
    let dir = temp_dir("kill-resume");
    let ids = ["rt1", "rf5", "rt3", "rf8"];
    let ref_journal = dir.join("ref-journal.json");
    let ref_out = dir.join("ref-out");
    let ref_manifest = dir.join("ref-manifest.json");
    let killed_journal = dir.join("killed-journal.json");
    let killed_out = dir.join("killed-out");
    let killed_manifest = dir.join("killed-manifest.json");

    // Reference: one uninterrupted journaled run.
    let reference = run_experiments(&journaled_args(
        "--journal",
        ref_journal.to_str().unwrap(),
        ref_out.to_str().unwrap(),
        ref_manifest.to_str().unwrap(),
        &ids,
    ));
    assert!(reference.status.success(), "{reference:?}");

    // Victim: same run, SIGKILLed as soon as the journal holds at least
    // one completion. (If the child wins the race and finishes, the
    // resume below is a pure replay — the assertions still hold.)
    let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(journaled_args(
            "--journal",
            killed_journal.to_str().unwrap(),
            killed_out.to_str().unwrap(),
            killed_manifest.to_str().unwrap(),
            &ids,
        ))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("experiments binary should spawn");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let journaled_entries = std::fs::read_to_string(&killed_journal)
            .map(|text| text.matches("\"kind\"").count())
            .unwrap_or(0);
        if journaled_entries >= 1 {
            break;
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill it — still fine
        }
        assert!(
            Instant::now() < deadline,
            "no journal entry appeared within 120 s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().ok();
    child.wait().expect("reap child");

    // A crashed writer may leave a partial temp next to the journal;
    // simulate the worst case explicitly. Resume must ignore it.
    let tmp = killed_journal.with_extension("json.tmp");
    std::fs::write(&tmp, b"{\"schema\": 1, \"context\": \"trunc").unwrap();

    let resumed = run_experiments(&journaled_args(
        "--resume",
        killed_journal.to_str().unwrap(),
        killed_out.to_str().unwrap(),
        killed_manifest.to_str().unwrap(),
        &ids,
    ));
    assert!(resumed.status.success(), "{resumed:?}");

    assert_eq!(
        read(&ref_manifest),
        read(&killed_manifest),
        "resumed manifest must be byte-identical to an uninterrupted run"
    );
    for id in ["R-T1", "R-F5", "R-T3", "R-F8"] {
        assert_eq!(
            read(&ref_out.join(format!("{id}.csv"))),
            read(&killed_out.join(format!("{id}.csv"))),
            "resumed {id}.csv must be byte-identical to an uninterrupted run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The journal digest proves completed work is not re-executed: after a
/// complete journaled run, resuming with `--inject-panic` on an already
/// completed experiment still succeeds — the injection never fires
/// because the job is replayed, not run.
#[test]
fn resume_replays_completed_work_instead_of_reexecuting_it() {
    let dir = temp_dir("no-reexec");
    let journal = dir.join("journal.json");
    let out_dir = dir.join("out");
    let manifest = dir.join("manifest.json");
    let ids = ["rt1", "rf5"];

    let first = run_experiments(&journaled_args(
        "--journal",
        journal.to_str().unwrap(),
        out_dir.to_str().unwrap(),
        manifest.to_str().unwrap(),
        &ids,
    ));
    assert!(first.status.success(), "{first:?}");
    let journal_before = read(&journal);
    assert!(journal_before.contains("\"digest\":"), "{journal_before}");

    let resumed = run_experiments(
        &[
            &journaled_args(
                "--resume",
                journal.to_str().unwrap(),
                out_dir.to_str().unwrap(),
                manifest.to_str().unwrap(),
                &ids,
            )[..],
            &["--inject-panic", "rt1"][..],
        ]
        .concat(),
    );
    assert!(
        resumed.status.success(),
        "the injected panic must never fire on a replayed job: {resumed:?}"
    );
    let stderr = String::from_utf8(resumed.stderr).unwrap();
    assert!(stderr.contains("2 replayed"), "{stderr}");
    assert_eq!(
        read(&journal),
        journal_before,
        "a pure replay must not grow the journal"
    );

    // Corrupting a digest invalidates that entry: the job re-runs. Flip
    // the first digit in place (same length, so the number still parses
    // as a u64 — just the wrong one).
    let start = journal_before.find("\"digest\": ").expect("a digest") + "\"digest\": ".len();
    let flipped = if journal_before.as_bytes()[start] == b'1' {
        "2"
    } else {
        "1"
    };
    let corrupted = format!(
        "{}{flipped}{}",
        &journal_before[..start],
        &journal_before[start + 1..]
    );
    assert_ne!(corrupted, journal_before, "corruption must apply");
    std::fs::write(&journal, corrupted).unwrap();
    let rerun = run_experiments(
        &[
            &journaled_args(
                "--resume",
                journal.to_str().unwrap(),
                out_dir.to_str().unwrap(),
                manifest.to_str().unwrap(),
                &ids,
            )[..],
            &["--inject-panic", "rt1"][..],
        ]
        .concat(),
    );
    // Whichever entry was corrupted re-runs; if it was rt1 the injection
    // fires. Either way the run must not crash the harness.
    let stderr = String::from_utf8(rerun.stderr).unwrap();
    assert!(stderr.contains("1 replayed"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming with a different configuration is rejected instead of
/// silently mixing incompatible runs, and `--resume` without a journal
/// file is an explicit error.
#[test]
fn resume_validates_journal_context_and_existence() {
    let dir = temp_dir("context");
    let journal = dir.join("journal.json");
    let out_dir = dir.join("out");
    let manifest = dir.join("manifest.json");

    let missing = run_experiments(&["--scale", "smoke", "--resume", journal.to_str().unwrap()]);
    assert!(!missing.status.success());
    let stderr = String::from_utf8(missing.stderr).unwrap();
    assert!(stderr.contains("does not exist"), "{stderr}");

    let first = run_experiments(&journaled_args(
        "--journal",
        journal.to_str().unwrap(),
        out_dir.to_str().unwrap(),
        manifest.to_str().unwrap(),
        &["rt1"],
    ));
    assert!(first.status.success(), "{first:?}");

    let mismatched = run_experiments(&journaled_args(
        "--resume",
        journal.to_str().unwrap(),
        out_dir.to_str().unwrap(),
        manifest.to_str().unwrap(),
        &["rt1", "rf5"],
    ));
    assert!(!mismatched.status.success());
    let stderr = String::from_utf8(mismatched.stderr).unwrap();
    assert!(stderr.contains("different run configuration"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `mapg-fuzz --journal` + `--resume`: the resumed campaign's manifest
/// is byte-identical to the uninterrupted one and nothing re-runs.
#[test]
fn fuzz_journal_resume_reproduces_the_manifest() {
    let dir = temp_dir("fuzz-resume");
    let journal = dir.join("journal.json");
    let first_manifest = dir.join("first.json");
    let resumed_manifest = dir.join("resumed.json");
    let base = ["--scenarios", "4", "--seed", "1", "--jobs", "2"];

    let first = run_fuzz(
        &[
            &base[..],
            &[
                "--journal",
                journal.to_str().unwrap(),
                "--manifest",
                first_manifest.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(first.status.success(), "{first:?}");
    let journal_before = read(&journal);

    let resumed = run_fuzz(
        &[
            &base[..],
            &[
                "--resume",
                journal.to_str().unwrap(),
                "--manifest",
                resumed_manifest.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(read(&first_manifest), read(&resumed_manifest));
    assert_eq!(
        read(&journal),
        journal_before,
        "a pure replay must not grow the journal"
    );

    // A different seed is a different campaign; its journal must not be
    // accepted.
    let mismatched = run_fuzz(&[
        "--scenarios",
        "4",
        "--seed",
        "2",
        "--resume",
        journal.to_str().unwrap(),
    ]);
    assert!(!mismatched.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// `mapg-fuzz --max-seconds`: a tiny wall-clock budget stops the
/// campaign early; the run still exits cleanly with a valid manifest
/// recording how many scenarios actually executed.
#[test]
fn fuzz_wall_clock_budget_stops_early_with_a_valid_manifest() {
    let dir = temp_dir("fuzz-budget");
    let manifest = dir.join("manifest.json");
    let out = run_fuzz(&[
        "--scenarios",
        "500",
        "--seed",
        "1",
        "--jobs",
        "2",
        "--max-seconds",
        "0.000001",
        "--manifest",
        manifest.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let json = read(&manifest);
    assert!(json.contains("\"scenarios\": 500"), "{json}");
    // The budget is racy by nature; executed is whatever got started
    // before it elapsed, and everything else is reported as skipped.
    let executed: u64 = json
        .split("\"executed\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("manifest records executed");
    assert!(executed < 500, "budget should stop early: {json}");
    if executed < 500 {
        assert!(stdout.contains("budget:"), "{stdout}");
    }
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

/// Bad supervision flag combinations are rejected up front.
#[test]
fn supervision_flag_validation() {
    for args in [
        &["--journal", "/tmp/a.json", "--resume", "/tmp/b.json"][..],
        &["--out-dir", "/tmp/d"],         // requires --csv
        &["--inject-hang", "rt1", "rt1"], // requires --deadline-ms
        &[
            "--metrics",
            "/tmp/m.json",
            "--journal",
            "/tmp/j.json",
            "rt1",
        ],
        &["--retries", "0"],
        &["--deadline-ms", "0"],
        &["--inject-panic", "nope99"],
    ] {
        let out = run_experiments(args);
        assert!(!out.status.success(), "{args:?} should be rejected");
    }
    let out = run_fuzz(&["--max-seconds", "0"]);
    assert!(!out.status.success());
    let out = run_fuzz(&["--journal", "/tmp/a.json", "--resume", "/tmp/b.json"]);
    assert!(!out.status.success());
}
