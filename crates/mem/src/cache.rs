//! Set-associative, true-LRU, write-back/write-allocate cache model.

use mapg_units::Cycles;

use core::fmt;

/// Victim-selection policy within a set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default; hardware approximates it).
    #[default]
    Lru,
    /// First-in first-out: evict the oldest *fill*, ignoring reuse.
    Fifo,
    /// Pseudo-random (deterministic xorshift seeded per cache instance).
    Random,
}

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes (must match the rest of the hierarchy).
    pub line_bytes: u64,
    /// Latency of a hit in this level.
    pub hit_latency: Cycles,
    /// Victim selection within a set.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 4-cycle L1 data cache.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            associativity: 8,
            line_bytes: 64,
            hit_latency: Cycles::new(4),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// A 2 MiB, 16-way, 30-cycle unified L2 (the last-level cache in this
    /// workspace's default hierarchy).
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 << 20,
            associativity: 16,
            line_bytes: 64,
            hit_latency: Cycles::new(30),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Returns a copy using a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `associativity`-way sets of `line_bytes` lines, or any field zero).
    pub fn sets(&self) -> u64 {
        assert!(
            self.size_bytes > 0 && self.associativity > 0 && self.line_bytes > 0,
            "cache geometry fields must be non-zero"
        );
        let way_bytes = u64::from(self.associativity) * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(way_bytes),
            "capacity {} not divisible by way size {}",
            self.size_bytes,
            way_bytes
        );
        self.size_bytes / way_bytes
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit {
        /// The line had been brought in by a prefetch and this is the
        /// first demand touch (used for prefetch-accuracy accounting).
        prefetched: bool,
    },
    /// The line was absent; it has been allocated. If the victim was dirty
    /// its line address is reported so the caller can schedule a writeback.
    Miss {
        /// Dirty victim line address (not byte address) evicted by the fill,
        /// if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit { .. })
    }
}

/// Running hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc, {:.1}% hit, {} wb",
            self.accesses,
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Filled by a prefetch and not yet demand-touched.
    prefetched: bool,
    /// Monotonic use stamp for true LRU.
    last_use: u64,
    /// Monotonic fill stamp for FIFO.
    filled_at: u64,
}

/// One cache level.
///
/// ```
/// use mapg_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert!(!l1.access(0x1000, false).is_hit()); // cold miss
/// assert!(l1.access(0x1000, false).is_hit());  // now resident
/// assert!(l1.access(0x1008, false).is_hit());  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    use_clock: u64,
    /// Xorshift state for [`ReplacementPolicy::Random`].
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets: vec![vec![Way::default(); config.associativity as usize]; sets as usize],
            stats: CacheStats::default(),
            use_clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses byte address `addr`; on a miss the line is allocated
    /// (write-allocate for stores, fill for loads) and the LRU victim
    /// evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.stats.accesses += 1;
        self.use_clock += 1;
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        let stamp = self.use_clock;

        let set = &mut self.sets[set_index];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = stamp;
            way.dirty |= is_write;
            let prefetched = way.prefetched;
            way.prefetched = false;
            self.stats.hits += 1;
            return CacheOutcome::Hit { prefetched };
        }

        // Miss: pick invalid way if any, else the policy's victim.
        let victim_index = Self::select_victim(set, self.config.replacement, &mut self.rng_state);
        let victim = &mut set[victim_index];
        let writeback = if victim.valid && victim.dirty {
            // Reconstruct the victim's line address from its tag.
            let victim_line = victim.tag * set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        *victim = Way {
            tag,
            valid: true,
            dirty: is_write,
            prefetched: false,
            last_use: stamp,
            filled_at: stamp,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Picks the way to evict: any invalid way first, else per policy.
    fn select_victim(set: &[Way], policy: ReplacementPolicy, rng_state: &mut u64) -> usize {
        if let Some(invalid) = set.iter().position(|w| !w.valid) {
            return invalid;
        }
        // The expects below are unreachable: validate() rejects
        // associativity == 0, so every set holds at least one way.
        match policy {
            ReplacementPolicy::Lru => set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("sets are never empty"),
            ReplacementPolicy::Fifo => set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.filled_at)
                .map(|(i, _)| i)
                .expect("sets are never empty"),
            ReplacementPolicy::Random => {
                // Xorshift64: deterministic per cache instance.
                let mut x = *rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng_state = x;
                (x % set.len() as u64) as usize
            }
        }
    }

    /// Installs `addr`'s line as a *prefetch* fill: does not count toward
    /// demand hit/miss statistics, marks the line so the first demand
    /// touch can be attributed to the prefetcher, and returns a dirty
    /// victim's line address when the fill evicts one.
    ///
    /// Filling an already-resident line is a no-op (returns `None`).
    pub fn fill_prefetch(&mut self, addr: u64) -> Option<u64> {
        self.use_clock += 1;
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        let stamp = self.use_clock;
        let set = &mut self.sets[set_index];
        if set.iter().any(|w| w.valid && w.tag == tag) {
            return None;
        }
        let victim_index = Self::select_victim(set, self.config.replacement, &mut self.rng_state);
        let victim = &mut set[victim_index];
        let writeback = if victim.valid && victim.dirty {
            let victim_line = victim.tag * set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        *victim = Way {
            tag,
            valid: true,
            dirty: false,
            prefetched: true,
            last_use: stamp,
            filled_at: stamp,
        };
        writeback
    }

    /// Whether `addr`'s line is currently resident (no LRU update, no
    /// stats). Used by tests and by the hierarchy's inclusive-fill checks.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        self.sets[set_index].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates all lines and forgets statistics; used between
    /// measurement phases.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = Way::default();
            }
        }
        self.stats = CacheStats::default();
        self.use_clock = 0;
        self.rng_state = 0x9E37_79B9_7F4A_7C15;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 2048);
        assert_eq!(tiny().config().sets(), 4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 1000,
            associativity: 3,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).is_hit());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3F, false).is_hit(), "same line");
        assert!(!c.access(0x40, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0x000 and 0x100 (4 sets × 64 B stride = 256 B).
        c.access(0x000, false);
        c.access(0x100, false);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, false);
        // Allocate a third line in set 0: must evict 0x100.
        c.access(0x200, false);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        // Evict 0x000 (LRU): expect its line address in the writeback.
        match c.access(0x200, false) {
            CacheOutcome::Miss {
                writeback: Some(line),
            } => {
                assert_eq!(line, 0, "victim was line zero");
            }
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        match c.access(0x200, false) {
            CacheOutcome::Miss { writeback: None } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false); // clean fill
        c.access(0x000, true); // dirty it via a write hit
        c.access(0x100, false);
        let outcome = c.access(0x200, false);
        assert!(
            matches!(outcome, CacheOutcome::Miss { writeback: Some(_) }),
            "dirtied line must write back, got {outcome:?}"
        );
    }

    #[test]
    fn stats_accounting() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x40, false);
        let stats = *c.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses(), 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(stats.to_string().contains("3 acc"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, true);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn empty_cache_hit_rate_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fifo_ignores_reuse_where_lru_respects_it() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Fifo,
        };
        let mut fifo = Cache::new(config);
        // Fill set 0 with lines A (0x000) then B (0x100); touch A again.
        fifo.access(0x000, false);
        fifo.access(0x100, false);
        fifo.access(0x000, false);
        // FIFO evicts A (oldest fill) despite the recent touch...
        fifo.access(0x200, false);
        assert!(!fifo.probe(0x000), "FIFO must evict the oldest fill");
        assert!(fifo.probe(0x100));
        // ...where LRU (see lru_evicts_least_recently_used) keeps A.
    }

    #[test]
    fn random_replacement_is_deterministic_per_instance() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Random,
        };
        let run = || {
            let mut cache = Cache::new(config);
            for i in 0..200u64 {
                cache.access((i * 97) % 4096 * 64, false);
            }
            cache.stats().hits
        };
        assert_eq!(run(), run(), "same seed, same victims, same hits");
    }

    #[test]
    fn replacement_policies_all_stay_correct_under_stress() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = CacheConfig {
                size_bytes: 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency: Cycles::new(1),
                replacement: policy,
            };
            let mut cache = Cache::new(config);
            for i in 0..5_000u64 {
                let addr = (i * 193) % 16_384;
                let outcome = cache.access(addr, i % 3 == 0);
                // A hit must always be confirmed by probe beforehand...
                let _ = outcome;
            }
            let stats = cache.stats();
            assert_eq!(stats.accesses, 5_000, "{policy:?}");
            assert!(stats.hits <= stats.accesses, "{policy:?}");
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // Stream 64 distinct lines (4 KiB) through a 512 B cache, twice.
        for round in 0..2 {
            for i in 0..64u64 {
                let outcome = c.access(i * 64, false);
                if round == 0 {
                    assert!(!outcome.is_hit());
                }
            }
        }
        // Second round still misses: the stream evicted itself.
        assert!(c.stats().hit_rate() < 0.1);
    }
}
