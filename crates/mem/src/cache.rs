//! Set-associative, true-LRU, write-back/write-allocate cache model.

use mapg_units::Cycles;

use core::fmt;

/// Victim-selection policy within a set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default; hardware approximates it).
    #[default]
    Lru,
    /// First-in first-out: evict the oldest *fill*, ignoring reuse.
    Fifo,
    /// Pseudo-random (deterministic xorshift seeded per cache instance).
    Random,
}

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes (must match the rest of the hierarchy).
    pub line_bytes: u64,
    /// Latency of a hit in this level.
    pub hit_latency: Cycles,
    /// Victim selection within a set.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 4-cycle L1 data cache.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            associativity: 8,
            line_bytes: 64,
            hit_latency: Cycles::new(4),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// A 2 MiB, 16-way, 30-cycle unified L2 (the last-level cache in this
    /// workspace's default hierarchy).
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 << 20,
            associativity: 16,
            line_bytes: 64,
            hit_latency: Cycles::new(30),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Returns a copy using a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `associativity`-way sets of `line_bytes` lines, or any field zero).
    pub fn sets(&self) -> u64 {
        assert!(
            self.size_bytes > 0 && self.associativity > 0 && self.line_bytes > 0,
            "cache geometry fields must be non-zero"
        );
        let way_bytes = u64::from(self.associativity) * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(way_bytes),
            "capacity {} not divisible by way size {}",
            self.size_bytes,
            way_bytes
        );
        self.size_bytes / way_bytes
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit {
        /// The line had been brought in by a prefetch and this is the
        /// first demand touch (used for prefetch-accuracy accounting).
        prefetched: bool,
    },
    /// The line was absent; it has been allocated. If the victim was dirty
    /// its line address is reported so the caller can schedule a writeback.
    Miss {
        /// Dirty victim line address (not byte address) evicted by the fill,
        /// if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit { .. })
    }
}

/// Running hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Folds another level's counters into this one (commutative; used to
    /// aggregate per-channel hierarchies into one cluster-wide view).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.writebacks += other.writebacks;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc, {:.1}% hit, {} wb",
            self.accesses,
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

/// One cache level.
///
/// ```
/// use mapg_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert!(!l1.access(0x1000, false).is_hit()); // cold miss
/// assert!(l1.access(0x1000, false).is_hit());  // now resident
/// assert!(l1.access(0x1008, false).is_hit());  // same line
/// ```
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Low 32 bits of each way's tag, `assoc` consecutive words per set.
    ///
    /// The tag scan is the hottest loop in the simulator and a set probe
    /// lands on an effectively random set, so state is split into
    /// *planes* — tags, stamps, packed flag words — sized for what each
    /// access class actually touches. The hit scan reads one set's tags
    /// plus its flag words; only a miss additionally reads the stamps for
    /// victim selection. The previous one-block-per-set layout interleaved
    /// all three, so every probe dragged the stamps through the host cache
    /// whether the access missed or not, and the 280 B per-set stride
    /// (16 ways) meant no two sets shared a line. The seed's
    /// `Vec<Vec<Way>>` additionally paid a pointer chase and 32 B of way
    /// record per tag compared.
    ///
    /// Tags are further split into 32-bit low/high half-planes so the scan
    /// itself touches half the bytes: a 16-way set's low halves are one
    /// 64 B host line instead of two. A low-half match is only a
    /// *candidate* hit; [`Cache::hi_nonzero`] resolves it without reading
    /// the high plane in the overwhelmingly common case where no stored
    /// tag (and no probed tag) has upper bits — a 2 MiB L2 would need
    /// byte addresses at 2^49 before any high half went non-zero.
    tags_lo: Vec<u32>,
    /// High 32 bits of each way's tag (same layout as `tags_lo`). Read and
    /// written only when a tag with upper bits is actually involved; see
    /// [`Cache::hi_nonzero`].
    tags_hi: Vec<u32>,
    /// Per-way LRU/FIFO stamps for the *generic* path only, `assoc`
    /// consecutive words per set; empty for the specialized
    /// associativities, whose recency lives in the packed list inside
    /// `masks`. Read only on a miss (victim selection); written on fills
    /// and LRU hits.
    stamps: Vec<u64>,
    /// Packed per-set metadata words, `mask_stride` per set.
    ///
    /// Specialized associativities (`W <= 16`): four words per set,
    /// `[valid, dirty, prefetched, recency]`, where `recency` is the
    /// nibble-packed way permutation of [`LRU_INIT`] ordered most- to
    /// least-recently stamped. Every stamp in the seed model is unique
    /// (`use_clock` ticks per access), so ordering by stamp *is* a
    /// permutation, and maintaining it move-to-front keeps victim choice
    /// bit-identical to `min_by_key(last_use / filled_at)` — while a miss
    /// reads one resident word instead of dragging `assoc × 8 B` of
    /// stamps through the host cache.
    ///
    /// Generic geometries: `3 × mask_words` per set in
    /// `[valid.. | dirty.. | prefetched..]` order, recency in `stamps`.
    masks: Vec<u64>,
    /// Word offset that 64-byte-aligns each plane's first set. A `Vec`'s
    /// buffer is only guaranteed element alignment (large allocations tend
    /// to land 16 bytes past a page), so without this a set's tag group
    /// straddles two host cache lines on almost every set — doubling the
    /// memory traffic of the random-set probes that dominate the hot
    /// path. Planes over-allocate up to one line of slack words and index
    /// from the first 64-byte boundary instead.
    lo_off: usize,
    /// See [`Cache::lo_off`]; offset for the `tags_hi` plane.
    hi_off: usize,
    /// See [`Cache::lo_off`]; offset for the `stamps` plane.
    stamps_off: usize,
    /// See [`Cache::lo_off`]; offset for the `masks` plane.
    masks_off: usize,
    /// Number of resident ways whose tag has non-zero upper 32 bits.
    ///
    /// While zero (every realistic address map), a low-half tag match *is*
    /// a full match whenever the probed tag's upper bits are also zero,
    /// and cannot match at all otherwise — so neither hits nor fills touch
    /// the `tags_hi` plane, halving the tag bytes a probe moves. The
    /// count is maintained exactly on every fill (invalid ways always
    /// hold a zero high half), so arbitrary 64-bit addresses stay
    /// bit-exact through the slow path that verifies candidates against
    /// the high plane.
    hi_nonzero: u64,
    /// Words per set in `masks` (4 specialized, `3 × mask_words` generic).
    mask_stride: usize,
    /// Whether `assoc` dispatches to the const-generic fast path (and the
    /// packed-recency layout above).
    specialized: bool,
    /// `u64` bitmask words per way-mask (`assoc.div_ceil(64)`, so 1 for
    /// any real associativity).
    mask_words: usize,
    /// Number of sets (cached from the geometry).
    set_count: u64,
    /// Ways per set (cached from `config.associativity`).
    assoc: usize,
    /// `line_bytes.trailing_zeros()` when the line size is a power of two
    /// (the overwhelmingly common case): `addr >> line_shift` replaces a
    /// 64-bit division on every access.
    line_shift: u32,
    line_pow2: bool,
    /// `set_count - 1` / `set_count.trailing_zeros()` when the set count
    /// is a power of two: mask-and-shift replaces the `%` / `/` pair.
    set_mask: u64,
    set_shift: u32,
    set_pow2: bool,
    stats: CacheStats,
    use_clock: u64,
    /// Xorshift state for [`ReplacementPolicy::Random`].
    rng_state: u64,
    /// One-entry MRU filter: the line the last demand access touched
    /// (`u64::MAX` when nothing is cached). Sequential runs stride one
    /// word, so up to seven consecutive references land on the same line;
    /// matching here skips the set probe entirely while making the exact
    /// same state updates (stamp refresh, dirty bit, counters) the full
    /// path would. The filter never outlives its line: a demand fill
    /// retargets it and a prefetch fill invalidates it, so it cannot go
    /// stale through an eviction.
    mru_line: u64,
    /// Stamp-plane index of the MRU way (`set * assoc + way`).
    mru_stamp_idx: usize,
    /// Mask-plane index of the MRU set's dirty word.
    mru_dirty_idx: usize,
    /// The MRU way's bit within its flag words.
    mru_bit: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let set_count = config.sets();
        let assoc = config.associativity as usize;
        let mask_words = assoc.div_ceil(64);
        let specialized = matches!(assoc, 1 | 2 | 4 | 8 | 16);
        let mask_stride = if specialized { 4 } else { 3 * mask_words };
        let n_ways = set_count as usize * assoc;
        let tags_lo = vec![0u32; n_ways + PLANE_SLACK_U32];
        let lo_off = plane_offset_u32(&tags_lo);
        let tags_hi = vec![0u32; n_ways + PLANE_SLACK_U32];
        let hi_off = plane_offset_u32(&tags_hi);
        let stamps = if specialized {
            Vec::new()
        } else {
            vec![0; n_ways + PLANE_SLACK]
        };
        let stamps_off = if stamps.is_empty() {
            0
        } else {
            plane_offset(&stamps)
        };
        let mut masks = vec![0; set_count as usize * mask_stride + PLANE_SLACK];
        let masks_off = plane_offset(&masks);
        if specialized {
            for set in 0..set_count as usize {
                masks[masks_off + set * 4 + 3] = LRU_INIT;
            }
        }
        Cache {
            config,
            tags_lo,
            tags_hi,
            stamps,
            masks,
            lo_off,
            hi_off,
            stamps_off,
            masks_off,
            hi_nonzero: 0,
            mask_stride,
            specialized,
            mask_words,
            set_count,
            assoc,
            line_shift: config.line_bytes.trailing_zeros(),
            line_pow2: config.line_bytes.is_power_of_two(),
            set_mask: set_count - 1,
            set_shift: set_count.trailing_zeros(),
            set_pow2: set_count.is_power_of_two(),
            stats: CacheStats::default(),
            use_clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            mru_line: u64::MAX,
            mru_stamp_idx: 0,
            mru_dirty_idx: 0,
            mru_bit: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line address (not byte address) containing `addr`.
    #[inline]
    pub(crate) fn line_of(&self, addr: u64) -> u64 {
        if self.line_pow2 {
            addr >> self.line_shift
        } else {
            addr / self.config.line_bytes
        }
    }

    /// Splits a line address into `(set_index, tag)`. For power-of-two set
    /// counts the mask/shift pair is bit-identical to the `%` / `/` pair.
    #[inline]
    fn split(&self, line: u64) -> (usize, u64) {
        if self.set_pow2 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            ((line % self.set_count) as usize, line / self.set_count)
        }
    }

    /// Accesses byte address `addr`; on a miss the line is allocated
    /// (write-allocate for stores, fill for loads) and the LRU victim
    /// evicted.
    ///
    /// The common associativities dispatch to a const-generic body whose
    /// tag/stamp arrays have compile-time length: the hit scan and victim
    /// select fully unroll with no bounds checks, and only the planes an
    /// access actually needs are touched (a hit never reads the stamps).
    #[inline(always)]
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.stats.accesses += 1;
        self.use_clock += 1;
        let line = self.line_of(addr);
        if line == self.mru_line {
            // Same line as the previous demand access: a guaranteed hit on
            // a known way. Replays the full hit path's updates against the
            // precomputed indices; the prefetched bit was already cleared
            // by the access that set the filter, so this touch reports
            // `prefetched: false` exactly as the probe would. On the
            // specialized path there is nothing else to do — the way was
            // moved to the recency front by the access that set the
            // filter, and re-promoting the front is the identity.
            self.stats.hits += 1;
            if !self.specialized && !matches!(self.config.replacement, ReplacementPolicy::Fifo) {
                self.stamps[self.mru_stamp_idx] = self.use_clock;
            }
            if is_write {
                self.masks[self.mru_dirty_idx] |= self.mru_bit;
            }
            return CacheOutcome::Hit { prefetched: false };
        }
        let (set_index, tag) = self.split(line);
        match self.assoc {
            8 => self.access_ways::<8>(line, set_index, tag, is_write),
            16 => self.access_ways::<16>(line, set_index, tag, is_write),
            4 => self.access_ways::<4>(line, set_index, tag, is_write),
            2 => self.access_ways::<2>(line, set_index, tag, is_write),
            1 => self.access_ways::<1>(line, set_index, tag, is_write),
            _ => self.access_any(line, set_index, tag, is_write),
        }
    }

    /// [`Cache::access`] body for an associativity known at compile time
    /// (`W <= 64`, one mask word). Behaviour-identical to
    /// [`Cache::access_any`]; only the code shape differs.
    #[inline(always)]
    fn access_ways<const W: usize>(
        &mut self,
        line: u64,
        set_index: usize,
        tag: u64,
        is_write: bool,
    ) -> CacheOutcome {
        let base = self.lo_off + set_index * W;
        let tags_lo: &mut [u32; W] = (&mut self.tags_lo[base..base + W])
            .try_into()
            .expect("tag plane holds W words per set");
        let mbase = self.masks_off + set_index * 4;
        let valid = self.masks[mbase];
        let lo_tag = tag as u32;
        let hi_tag = (tag >> 32) as u32;
        let hbase = self.hi_off + set_index * W;

        // Hit scan: a branchless fixed-trip match mask over the low tag
        // halves. An early-exit compare loop mispredicts on every probe
        // (the hit way position is effectively random); accumulating
        // equality bits lets the compiler vectorize the compares and
        // leaves one candidate/no-candidate branch. At most one valid way
        // holds a given full tag, so a candidate resolves to at most one
        // hit; `hi_nonzero == 0` (the steady state for realistic address
        // maps) resolves it without touching the high plane at all.
        let candidates = match_mask_ways::<W>(tags_lo, lo_tag) & valid;
        let hit_way = if candidates == 0 {
            None
        } else if self.hi_nonzero == 0 {
            // Every resident high half is zero: a low match is a full
            // match iff the probed tag's high half is zero too (and then
            // it is unique — duplicate full tags cannot coexist).
            (hi_tag == 0).then(|| candidates.trailing_zeros() as usize)
        } else {
            // Rare: some resident tag has upper bits, so each candidate
            // must be verified against the high plane.
            let mut rest = candidates;
            let mut found = None;
            while rest != 0 {
                let way = rest.trailing_zeros() as usize;
                if self.tags_hi[hbase + way] == hi_tag {
                    found = Some(way);
                    break;
                }
                rest &= rest - 1;
            }
            found
        };
        if let Some(way) = hit_way {
            // A hit refreshes recency under LRU; FIFO keys on fill time
            // and Random never reads it, so both skip the promote.
            if matches!(self.config.replacement, ReplacementPolicy::Lru) {
                self.masks[mbase + 3] = lru_promote(self.masks[mbase + 3], way as u64);
            }
            let bit = 1u64 << way;
            if is_write {
                self.masks[mbase + 1] |= bit;
            }
            let prefetched = self.masks[mbase + 2] & bit != 0;
            if prefetched {
                self.masks[mbase + 2] &= !bit;
            }
            self.stats.hits += 1;
            self.mru_line = line;
            self.mru_dirty_idx = mbase + 1;
            self.mru_bit = bit;
            return CacheOutcome::Hit { prefetched };
        }

        // Miss: pick the lowest invalid way if any, else the policy's
        // victim — the recency back for LRU/FIFO, the next xorshift draw
        // for Random. Bits past the associativity are forced "valid" so
        // they are never picked, matching the seed's first-invalid order.
        let live = if W == 64 {
            valid
        } else {
            valid | !((1u64 << W) - 1)
        };
        let victim = if live != u64::MAX {
            (!live).trailing_zeros() as usize
        } else {
            match self.config.replacement {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                    lru_victim::<W>(self.masks[mbase + 3])
                }
                ReplacementPolicy::Random => xorshift(&mut self.rng_state) as usize % W,
            }
        };
        let bit = 1u64 << victim;
        // The victim's high half is zero by construction while
        // `hi_nonzero` is zero (invalid ways always hold zero), so the
        // steady state never loads the high plane here either.
        let old_hi = if self.hi_nonzero == 0 {
            0
        } else {
            self.tags_hi[hbase + victim]
        };
        let writeback = if valid & bit != 0 && self.masks[mbase + 1] & bit != 0 {
            // Reconstruct the victim's line address from its tag.
            let victim_tag = (u64::from(old_hi) << 32) | u64::from(tags_lo[victim]);
            self.stats.writebacks += 1;
            Some(victim_tag * self.set_count + set_index as u64)
        } else {
            None
        };
        tags_lo[victim] = lo_tag;
        if hi_tag != old_hi {
            self.tags_hi[hbase + victim] = hi_tag;
            self.hi_nonzero -= u64::from(old_hi != 0);
            self.hi_nonzero += u64::from(hi_tag != 0);
        }
        // A fill stamps both last-use and fill time in the seed, so LRU
        // and FIFO promote; Random's recency is never consulted.
        if !matches!(self.config.replacement, ReplacementPolicy::Random) {
            self.masks[mbase + 3] = lru_promote(self.masks[mbase + 3], victim as u64);
        }
        self.masks[mbase] = valid | bit;
        if is_write {
            self.masks[mbase + 1] |= bit;
        } else {
            self.masks[mbase + 1] &= !bit;
        }
        self.masks[mbase + 2] &= !bit;
        self.mru_line = line;
        self.mru_dirty_idx = mbase + 1;
        self.mru_bit = bit;
        CacheOutcome::Miss { writeback }
    }

    /// [`Cache::access`] body for arbitrary geometries (including more
    /// than 64 ways); the correctness reference for the const-generic
    /// fast paths.
    fn access_any(
        &mut self,
        line: u64,
        set_index: usize,
        tag: u64,
        is_write: bool,
    ) -> CacheOutcome {
        let stamp = self.use_clock;
        let assoc = self.assoc;
        let mw = self.mask_words;
        let base = self.lo_off + set_index * assoc;
        let hbase = self.hi_off + set_index * assoc;
        let sbase = self.stamps_off + set_index * assoc;
        let mbase = self.masks_off + set_index * self.mask_stride;
        let lo_tag = tag as u32;
        let hi_tag = (tag >> 32) as u32;
        for word in 0..mw {
            let lo = word * 64;
            let ways_here = (assoc - lo).min(64);
            // Low-half candidates, each verified against the high plane
            // (no `hi_nonzero` fast path here — this is the cold
            // correctness reference, kept as plain as possible).
            let mut candidates =
                match_mask(&self.tags_lo[base + lo..base + lo + ways_here], lo_tag)
                    & self.masks[mbase + word];
            while candidates != 0 {
                let way = lo + candidates.trailing_zeros() as usize;
                if self.tags_hi[hbase + way] != hi_tag {
                    candidates &= candidates - 1;
                    continue;
                }
                if !matches!(self.config.replacement, ReplacementPolicy::Fifo) {
                    self.stamps[sbase + way] = stamp;
                }
                let bit = 1u64 << (way % 64);
                if is_write {
                    self.masks[mbase + mw + word] |= bit;
                }
                let prefetched = self.masks[mbase + 2 * mw + word] & bit != 0;
                if prefetched {
                    self.masks[mbase + 2 * mw + word] &= !bit;
                }
                self.stats.hits += 1;
                self.mru_line = line;
                self.mru_stamp_idx = sbase + way;
                self.mru_dirty_idx = mbase + mw + word;
                self.mru_bit = bit;
                return CacheOutcome::Hit { prefetched };
            }
        }

        let victim = pick_victim(
            self.config.replacement,
            assoc,
            &self.stamps[sbase..sbase + assoc],
            &self.masks[mbase..mbase + mw],
            &mut self.rng_state,
        );
        let word = victim / 64;
        let bit = 1u64 << (victim % 64);
        let old_hi = self.tags_hi[hbase + victim];
        let writeback =
            if self.masks[mbase + word] & bit != 0 && self.masks[mbase + mw + word] & bit != 0 {
                let victim_tag = (u64::from(old_hi) << 32) | u64::from(self.tags_lo[base + victim]);
                self.stats.writebacks += 1;
                Some(victim_tag * self.set_count + set_index as u64)
            } else {
                None
            };
        self.tags_lo[base + victim] = lo_tag;
        self.tags_hi[hbase + victim] = hi_tag;
        self.hi_nonzero -= u64::from(old_hi != 0);
        self.hi_nonzero += u64::from(hi_tag != 0);
        self.stamps[sbase + victim] = stamp;
        self.masks[mbase + word] |= bit;
        if is_write {
            self.masks[mbase + mw + word] |= bit;
        } else {
            self.masks[mbase + mw + word] &= !bit;
        }
        self.masks[mbase + 2 * mw + word] &= !bit;
        self.mru_line = line;
        self.mru_stamp_idx = sbase + victim;
        self.mru_dirty_idx = mbase + mw + word;
        self.mru_bit = bit;
        CacheOutcome::Miss { writeback }
    }

    /// Installs `addr`'s line as a *prefetch* fill: does not count toward
    /// demand hit/miss statistics, marks the line so the first demand
    /// touch can be attributed to the prefetcher, and returns a dirty
    /// victim's line address when the fill evicts one.
    ///
    /// Filling an already-resident line is a no-op (returns `None`).
    pub fn fill_prefetch(&mut self, addr: u64) -> Option<u64> {
        self.use_clock += 1;
        let (set_index, tag) = self.split(self.line_of(addr));
        let stamp = self.use_clock;
        if self.resident(set_index, tag) {
            return None;
        }
        let assoc = self.assoc;
        let mw = self.mask_words;
        let base = self.lo_off + set_index * assoc;
        let hbase = self.hi_off + set_index * assoc;
        let sbase = self.stamps_off + set_index * assoc;
        let mbase = self.masks_off + set_index * self.mask_stride;
        let victim = if self.specialized {
            self.pick_victim_packed(set_index)
        } else {
            pick_victim(
                self.config.replacement,
                assoc,
                &self.stamps[sbase..sbase + assoc],
                &self.masks[mbase..mbase + mw],
                &mut self.rng_state,
            )
        };
        let word = victim / 64;
        let bit = 1u64 << (victim % 64);
        let lo_tag = tag as u32;
        let hi_tag = (tag >> 32) as u32;
        let old_hi = self.tags_hi[hbase + victim];
        let writeback =
            if self.masks[mbase + word] & bit != 0 && self.masks[mbase + mw + word] & bit != 0 {
                let victim_tag = (u64::from(old_hi) << 32) | u64::from(self.tags_lo[base + victim]);
                self.stats.writebacks += 1;
                Some(victim_tag * self.set_count + set_index as u64)
            } else {
                None
            };
        self.tags_lo[base + victim] = lo_tag;
        self.tags_hi[hbase + victim] = hi_tag;
        self.hi_nonzero -= u64::from(old_hi != 0);
        self.hi_nonzero += u64::from(hi_tag != 0);
        if self.specialized {
            // A prefetch fill stamps recency exactly like a demand fill.
            if !matches!(self.config.replacement, ReplacementPolicy::Random) {
                self.masks[mbase + 3] = lru_promote(self.masks[mbase + 3], victim as u64);
            }
        } else {
            self.stamps[sbase + victim] = stamp;
        }
        self.masks[mbase + word] |= bit;
        self.masks[mbase + mw + word] &= !bit;
        self.masks[mbase + 2 * mw + word] |= bit;
        // The fill may have evicted the filter's line, and the freshly
        // prefetched line must report `prefetched: true` on its first
        // demand touch — either way the filter must not answer for it.
        self.mru_line = u64::MAX;
        writeback
    }

    /// Whether `tag` is resident in `set_index`'s set.
    #[inline]
    fn resident(&self, set_index: usize, tag: u64) -> bool {
        let base = self.lo_off + set_index * self.assoc;
        let hbase = self.hi_off + set_index * self.assoc;
        let tags_lo = &self.tags_lo[base..base + self.assoc];
        let mbase = self.masks_off + set_index * self.mask_stride;
        let valid = &self.masks[mbase..mbase + self.mask_words];
        for (word, &valid_word) in valid.iter().enumerate() {
            let lo = word * 64;
            let ways_here = (self.assoc - lo).min(64);
            let mut candidates = match_mask(&tags_lo[lo..lo + ways_here], tag as u32) & valid_word;
            while candidates != 0 {
                let way = lo + candidates.trailing_zeros() as usize;
                if self.tags_hi[hbase + way] == (tag >> 32) as u32 {
                    return true;
                }
                candidates &= candidates - 1;
            }
        }
        false
    }

    /// Hints the host CPU to start pulling `addr`'s set metadata (tags,
    /// flag words, stamps) toward its caches ahead of an imminent
    /// [`Cache::access`]. Purely a scheduling hint — no simulated state
    /// changes and no effect on any outcome.
    ///
    /// The planes of a large cache level (a 2 MiB L2 keeps 256 KiB of
    /// tags) do not fit in the host's fastest caches, and a probe lands on
    /// an effectively random set, so the demand load stalls for the full
    /// host memory latency. The hierarchy issues this hint for the L2 set
    /// on entry, overlapping that fetch with the L1 probe that precedes
    /// the L2 access.
    /// The crate forbids `unsafe`, so instead of a prefetch intrinsic this
    /// issues plain loads of one word per plane line and launders the
    /// result through [`core::hint::black_box`] so they are not optimized
    /// away. Nothing downstream depends on the values, so an out-of-order
    /// host retires past them while the lines travel — the same overlap a
    /// `prefetcht0` would buy.
    #[inline]
    pub fn prefetch_probe(&self, addr: u64) {
        let (set_index, _) = self.split(self.line_of(addr));
        let base = self.lo_off + set_index * self.assoc;
        let mbase = self.masks_off + set_index * self.mask_stride;
        // One low-tag word and one flag word cover the whole scan for
        // assoc <= 16: the low halves of 16 ways are a single 64 B line.
        let mut touch = u64::from(self.tags_lo[base]) ^ self.masks[mbase];
        if self.assoc > 16 {
            touch ^= u64::from(self.tags_lo[base + 16]);
        }
        core::hint::black_box(touch);
    }

    /// Whether `addr`'s line is currently resident (no LRU update, no
    /// stats). Used by tests and by the hierarchy's inclusive-fill checks.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_index, tag) = self.split(self.line_of(addr));
        self.resident(set_index, tag)
    }

    /// Picks the eviction way for one set on the specialized (packed
    /// recency) layout: lowest invalid way first, then the recency back
    /// for LRU/FIFO or the next xorshift draw for Random — the same
    /// choices [`pick_victim`] makes from per-way stamps.
    fn pick_victim_packed(&mut self, set_index: usize) -> usize {
        let mbase = self.masks_off + set_index * 4;
        let valid = self.masks[mbase];
        let live = valid | !((1u64 << self.assoc) - 1);
        if live != u64::MAX {
            return (!live).trailing_zeros() as usize;
        }
        match self.config.replacement {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                ((self.masks[mbase + 3] >> (4 * (self.assoc - 1))) & 0xF) as usize
            }
            ReplacementPolicy::Random => xorshift(&mut self.rng_state) as usize % self.assoc,
        }
    }

    /// Invalidates all lines and forgets statistics; used between
    /// measurement phases.
    pub fn reset(&mut self) {
        self.tags_lo.fill(0);
        self.tags_hi.fill(0);
        self.hi_nonzero = 0;
        self.stamps.fill(0);
        self.masks.fill(0);
        if self.specialized {
            for set in 0..self.set_count as usize {
                self.masks[self.masks_off + set * 4 + 3] = LRU_INIT;
            }
        }
        self.stats = CacheStats::default();
        self.use_clock = 0;
        self.rng_state = 0x9E37_79B9_7F4A_7C15;
        self.mru_line = u64::MAX;
    }
}

impl Clone for Cache {
    /// Plane-aware clone: the fresh allocations land at their own
    /// addresses, so each plane's data is re-based onto the clone's own
    /// 64-byte offset (a derived clone would copy the *indices* while the
    /// alignment they encode changed underneath). The MRU filter is
    /// dropped rather than re-based — its absolute indices belong to the
    /// source's offsets, and starting cold changes no outcome (the full
    /// probe path makes the identical updates on the next touch).
    fn clone(&self) -> Self {
        let n_ways = self.set_count as usize * self.assoc;
        let mut tags_lo = vec![0u32; n_ways + PLANE_SLACK_U32];
        let lo_off = plane_offset_u32(&tags_lo);
        tags_lo[lo_off..lo_off + n_ways]
            .copy_from_slice(&self.tags_lo[self.lo_off..self.lo_off + n_ways]);
        let mut tags_hi = vec![0u32; n_ways + PLANE_SLACK_U32];
        let hi_off = plane_offset_u32(&tags_hi);
        tags_hi[hi_off..hi_off + n_ways]
            .copy_from_slice(&self.tags_hi[self.hi_off..self.hi_off + n_ways]);
        let mut stamps = Vec::new();
        let mut stamps_off = 0;
        if !self.stamps.is_empty() {
            stamps = vec![0; n_ways + PLANE_SLACK];
            stamps_off = plane_offset(&stamps);
            stamps[stamps_off..stamps_off + n_ways]
                .copy_from_slice(&self.stamps[self.stamps_off..self.stamps_off + n_ways]);
        }
        let n_masks = self.set_count as usize * self.mask_stride;
        let mut masks = vec![0; n_masks + PLANE_SLACK];
        let masks_off = plane_offset(&masks);
        masks[masks_off..masks_off + n_masks]
            .copy_from_slice(&self.masks[self.masks_off..self.masks_off + n_masks]);
        Cache {
            config: self.config,
            tags_lo,
            tags_hi,
            stamps,
            masks,
            lo_off,
            hi_off,
            stamps_off,
            masks_off,
            hi_nonzero: self.hi_nonzero,
            mask_stride: self.mask_stride,
            specialized: self.specialized,
            mask_words: self.mask_words,
            set_count: self.set_count,
            assoc: self.assoc,
            line_shift: self.line_shift,
            line_pow2: self.line_pow2,
            set_mask: self.set_mask,
            set_shift: self.set_shift,
            set_pow2: self.set_pow2,
            stats: self.stats,
            use_clock: self.use_clock,
            rng_state: self.rng_state,
            mru_line: u64::MAX,
            mru_stamp_idx: 0,
            mru_dirty_idx: 0,
            mru_bit: 0,
        }
    }
}

/// Slack words appended to each `u64` plane so indexing can start at the
/// first 64-byte boundary inside the allocation (see [`plane_offset`]).
const PLANE_SLACK: usize = 7;

/// [`PLANE_SLACK`] for the `u32` tag half-planes.
const PLANE_SLACK_U32: usize = 15;

/// Word offset of the first 64-byte boundary in `plane`'s buffer
/// (`0..=7`); the plane's sets are indexed from there so a set's words
/// never straddle host cache lines gratuitously.
fn plane_offset(plane: &[u64]) -> usize {
    ((64 - (plane.as_ptr() as usize & 63)) & 63) >> 3
}

/// [`plane_offset`] for the `u32` tag half-planes (`0..=15`).
fn plane_offset_u32(plane: &[u32]) -> usize {
    ((64 - (plane.as_ptr() as usize & 63)) & 63) >> 2
}

/// Initial nibble-packed recency list: way `i` at position `i`, so the
/// low nibble (way 0) is "most recent" and the high positions hold the
/// ways a narrower associativity never uses. Promotions keep real ways in
/// the bottom `W` positions, so the victim read works at any `W <= 16`.
const LRU_INIT: u64 = 0xFEDC_BA98_7654_3210;

/// One xorshift64 step (the deterministic per-instance RNG behind
/// [`ReplacementPolicy::Random`]).
#[inline(always)]
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Position (nibble index) of `way` in the packed recency list. The list
/// is always a permutation, so exactly one nibble matches; the SWAR
/// zero-nibble scan finds it without a loop-carried branch.
#[inline(always)]
fn lru_find_pos(list: u64, way: u64) -> u32 {
    const SPREAD: u64 = 0x1111_1111_1111_1111;
    let diff = list ^ SPREAD.wrapping_mul(way);
    // High bit of each zero nibble; borrows cannot flag a nibble below
    // the (unique) match, so the lowest flag is the match.
    let flags = diff.wrapping_sub(SPREAD) & !diff & (SPREAD << 3);
    flags.trailing_zeros() / 4
}

/// Moves `way` to the front (low nibble) of the packed recency list,
/// shifting the entries it overtook up one position.
#[inline(always)]
fn lru_promote(list: u64, way: u64) -> u64 {
    let pos = lru_find_pos(list, way);
    // `(!0 << 4·pos) << 4` rather than `!0 << 4·(pos+1)`: at pos 15 the
    // latter would shift by 64.
    let above = ((!0u64) << (4 * pos)) << 4;
    let below = !((!0u64) << (4 * pos));
    (list & above) | ((list & below) << 4) | way
}

/// The least-recently-stamped way among the `W` in use: position `W - 1`
/// of the packed list (real ways never leave the bottom `W` positions).
#[inline(always)]
fn lru_victim<const W: usize>(list: u64) -> usize {
    ((list >> (4 * (W - 1))) & 0xF) as usize
}

/// Bitmask of ways whose low tag half equals `tag`, for a compile-time
/// way count: the loop fully unrolls and vectorizes with no dispatch or
/// bounds checks. Same contract as [`match_mask`].
#[inline(always)]
fn match_mask_ways<const W: usize>(tags: &[u32; W], tag: u32) -> u64 {
    let mut matches = 0u64;
    let mut i = 0;
    while i < W {
        matches |= u64::from(tags[i] == tag) << i;
        i += 1;
    }
    matches
}

/// Picks the way to evict from one set: the first invalid way if any, else
/// per policy. First-minimum tie-breaks match `min_by_key`, and the RNG is
/// only consumed when every way is valid, so victim choice is identical to
/// the seed implementation's.
#[inline]
fn pick_victim(
    policy: ReplacementPolicy,
    assoc: usize,
    stamps: &[u64],
    valid: &[u64],
    rng_state: &mut u64,
) -> usize {
    for (word, &v) in valid.iter().enumerate() {
        let ways_here = (assoc - word * 64).min(64);
        // Force bits past the associativity to "valid" so they are never
        // picked; `trailing_zeros` then yields the lowest invalid way,
        // matching the seed's first-invalid scan order.
        let live = if ways_here == 64 {
            v
        } else {
            v | !((1u64 << ways_here) - 1)
        };
        if live != u64::MAX {
            return word * 64 + (!live).trailing_zeros() as usize;
        }
    }
    match policy {
        // LRU keys on last use, FIFO on fill time — both live in the
        // merged stamp array (hits only refresh it under LRU).
        ReplacementPolicy::Lru | ReplacementPolicy::Fifo => first_min(stamps),
        ReplacementPolicy::Random => (xorshift(rng_state) % assoc as u64) as usize,
    }
}

/// Bitmask of ways whose low tag half equals `tag` (bit `i` set iff
/// `tags[i]` matches); callers verify candidates against the high plane.
/// Dispatching on the common associativities gives LLVM a fixed-trip
/// loop it fully unrolls and vectorizes; the generic fallback keeps the
/// model correct for arbitrary geometries.
#[inline]
fn match_mask(tags: &[u32], tag: u32) -> u64 {
    #[inline]
    fn fixed<const W: usize>(tags: &[u32], tag: u32) -> u64 {
        let tags: &[u32; W] = tags.try_into().expect("dispatched on length");
        let mut matches = 0u64;
        let mut i = 0;
        while i < W {
            matches |= u64::from(tags[i] == tag) << i;
            i += 1;
        }
        matches
    }
    match tags.len() {
        1 => fixed::<1>(tags, tag),
        2 => fixed::<2>(tags, tag),
        4 => fixed::<4>(tags, tag),
        8 => fixed::<8>(tags, tag),
        16 => fixed::<16>(tags, tag),
        _ => {
            let mut matches = 0u64;
            for (i, &t) in tags.iter().enumerate() {
                matches |= u64::from(t == tag) << i;
            }
            matches
        }
    }
}

/// Index of the first minimum of `keys` — the same element `min_by_key`
/// returns. Computed as a (vectorizable) min reduction followed by an
/// equality mask, so random stamp orders cost no branch mispredicts.
#[inline]
fn first_min(keys: &[u64]) -> usize {
    #[inline]
    fn fixed<const W: usize>(keys: &[u64]) -> usize {
        let keys: &[u64; W] = keys.try_into().expect("dispatched on length");
        let mut min = u64::MAX;
        for &key in keys {
            min = min.min(key);
        }
        let mut mask = 0u64;
        let mut i = 0;
        while i < W {
            mask |= u64::from(keys[i] == min) << i;
            i += 1;
        }
        mask.trailing_zeros() as usize
    }
    match keys.len() {
        2 => fixed::<2>(keys),
        4 => fixed::<4>(keys),
        8 => fixed::<8>(keys),
        16 => fixed::<16>(keys),
        _ => {
            let mut best = 0usize;
            let mut best_key = keys[0];
            for (i, &key) in keys.iter().enumerate().skip(1) {
                let better = key < best_key;
                best = if better { i } else { best };
                best_key = if better { key } else { best_key };
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 2048);
        assert_eq!(tiny().config().sets(), 4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 1000,
            associativity: 3,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).is_hit());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3F, false).is_hit(), "same line");
        assert!(!c.access(0x40, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0x000 and 0x100 (4 sets × 64 B stride = 256 B).
        c.access(0x000, false);
        c.access(0x100, false);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, false);
        // Allocate a third line in set 0: must evict 0x100.
        c.access(0x200, false);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        // Evict 0x000 (LRU): expect its line address in the writeback.
        match c.access(0x200, false) {
            CacheOutcome::Miss {
                writeback: Some(line),
            } => {
                assert_eq!(line, 0, "victim was line zero");
            }
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        match c.access(0x200, false) {
            CacheOutcome::Miss { writeback: None } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false); // clean fill
        c.access(0x000, true); // dirty it via a write hit
        c.access(0x100, false);
        let outcome = c.access(0x200, false);
        assert!(
            matches!(outcome, CacheOutcome::Miss { writeback: Some(_) }),
            "dirtied line must write back, got {outcome:?}"
        );
    }

    #[test]
    fn stats_accounting() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x40, false);
        let stats = *c.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses(), 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(stats.to_string().contains("3 acc"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, true);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn empty_cache_hit_rate_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fifo_ignores_reuse_where_lru_respects_it() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Fifo,
        };
        let mut fifo = Cache::new(config);
        // Fill set 0 with lines A (0x000) then B (0x100); touch A again.
        fifo.access(0x000, false);
        fifo.access(0x100, false);
        fifo.access(0x000, false);
        // FIFO evicts A (oldest fill) despite the recent touch...
        fifo.access(0x200, false);
        assert!(!fifo.probe(0x000), "FIFO must evict the oldest fill");
        assert!(fifo.probe(0x100));
        // ...where LRU (see lru_evicts_least_recently_used) keeps A.
    }

    #[test]
    fn random_replacement_is_deterministic_per_instance() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Random,
        };
        let run = || {
            let mut cache = Cache::new(config);
            for i in 0..200u64 {
                cache.access((i * 97) % 4096 * 64, false);
            }
            cache.stats().hits
        };
        assert_eq!(run(), run(), "same seed, same victims, same hits");
    }

    #[test]
    fn replacement_policies_all_stay_correct_under_stress() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = CacheConfig {
                size_bytes: 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency: Cycles::new(1),
                replacement: policy,
            };
            let mut cache = Cache::new(config);
            for i in 0..5_000u64 {
                let addr = (i * 193) % 16_384;
                let outcome = cache.access(addr, i % 3 == 0);
                // A hit must always be confirmed by probe beforehand...
                let _ = outcome;
            }
            let stats = cache.stats();
            assert_eq!(stats.accesses, 5_000, "{policy:?}");
            assert!(stats.hits <= stats.accesses, "{policy:?}");
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // Stream 64 distinct lines (4 KiB) through a 512 B cache, twice.
        for round in 0..2 {
            for i in 0..64u64 {
                let outcome = c.access(i * 64, false);
                if round == 0 {
                    assert!(!outcome.is_hit());
                }
            }
        }
        // Second round still misses: the stream evicted itself.
        assert!(c.stats().hit_rate() < 0.1);
    }
}
