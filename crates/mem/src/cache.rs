//! Set-associative, true-LRU, write-back/write-allocate cache model.

use mapg_units::Cycles;

use core::fmt;

/// Victim-selection policy within a set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the default; hardware approximates it).
    #[default]
    Lru,
    /// First-in first-out: evict the oldest *fill*, ignoring reuse.
    Fifo,
    /// Pseudo-random (deterministic xorshift seeded per cache instance).
    Random,
}

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes (must match the rest of the hierarchy).
    pub line_bytes: u64,
    /// Latency of a hit in this level.
    pub hit_latency: Cycles,
    /// Victim selection within a set.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 4-cycle L1 data cache.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            associativity: 8,
            line_bytes: 64,
            hit_latency: Cycles::new(4),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// A 2 MiB, 16-way, 30-cycle unified L2 (the last-level cache in this
    /// workspace's default hierarchy).
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 << 20,
            associativity: 16,
            line_bytes: 64,
            hit_latency: Cycles::new(30),
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Returns a copy using a different replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `associativity`-way sets of `line_bytes` lines, or any field zero).
    pub fn sets(&self) -> u64 {
        assert!(
            self.size_bytes > 0 && self.associativity > 0 && self.line_bytes > 0,
            "cache geometry fields must be non-zero"
        );
        let way_bytes = u64::from(self.associativity) * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(way_bytes),
            "capacity {} not divisible by way size {}",
            self.size_bytes,
            way_bytes
        );
        self.size_bytes / way_bytes
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit {
        /// The line had been brought in by a prefetch and this is the
        /// first demand touch (used for prefetch-accuracy accounting).
        prefetched: bool,
    },
    /// The line was absent; it has been allocated. If the victim was dirty
    /// its line address is reported so the caller can schedule a writeback.
    Miss {
        /// Dirty victim line address (not byte address) evicted by the fill,
        /// if any.
        writeback: Option<u64>,
    },
}

impl CacheOutcome {
    /// Whether the access hit.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit { .. })
    }
}

/// Running hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc, {:.1}% hit, {} wb",
            self.accesses,
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

/// One cache level.
///
/// ```
/// use mapg_mem::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert!(!l1.access(0x1000, false).is_hit()); // cold miss
/// assert!(l1.access(0x1000, false).is_hit());  // now resident
/// assert!(l1.access(0x1008, false).is_hit());  // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All per-way state, one contiguous *block per set*:
    ///
    /// ```text
    /// [ tags: assoc × u64 | stamps: assoc × u64 | valid/dirty/prefetched
    ///                                             bitmasks: 3 × mask_words ]
    /// ```
    ///
    /// The tag scan is the hottest loop in the simulator and a set probe
    /// lands on an effectively random set, so the layout is chosen for
    /// *host*-cache behaviour: everything one access touches — tags, the
    /// victim's LRU/FIFO stamps, the state bits — sits in a handful of
    /// **consecutive** cache lines that the host's adjacent-line prefetcher
    /// streams in together. Structure-of-arrays (separate tag/stamp/flag
    /// vectors) costs one independent host miss per array; the seed's
    /// `Vec<Vec<Way>>` additionally paid a pointer chase and dragged 32 B
    /// of way record through the cache per tag compared.
    data: Vec<u64>,
    /// `u64`s per set block: `2 * assoc + 3 * mask_words`.
    block: usize,
    /// `u64` bitmask words per way-mask (`assoc.div_ceil(64)`, so 1 for
    /// any real associativity).
    mask_words: usize,
    /// Number of sets (cached from the geometry).
    set_count: u64,
    /// Ways per set (cached from `config.associativity`).
    assoc: usize,
    /// `line_bytes.trailing_zeros()` when the line size is a power of two
    /// (the overwhelmingly common case): `addr >> line_shift` replaces a
    /// 64-bit division on every access.
    line_shift: u32,
    line_pow2: bool,
    /// `set_count - 1` / `set_count.trailing_zeros()` when the set count
    /// is a power of two: mask-and-shift replaces the `%` / `/` pair.
    set_mask: u64,
    set_shift: u32,
    set_pow2: bool,
    stats: CacheStats,
    use_clock: u64,
    /// Xorshift state for [`ReplacementPolicy::Random`].
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let set_count = config.sets();
        let assoc = config.associativity as usize;
        let mask_words = assoc.div_ceil(64);
        let block = 2 * assoc + 3 * mask_words;
        Cache {
            config,
            data: vec![0; set_count as usize * block],
            block,
            mask_words,
            set_count,
            assoc,
            line_shift: config.line_bytes.trailing_zeros(),
            line_pow2: config.line_bytes.is_power_of_two(),
            set_mask: set_count - 1,
            set_shift: set_count.trailing_zeros(),
            set_pow2: set_count.is_power_of_two(),
            stats: CacheStats::default(),
            use_clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line address (not byte address) containing `addr`.
    #[inline]
    pub(crate) fn line_of(&self, addr: u64) -> u64 {
        if self.line_pow2 {
            addr >> self.line_shift
        } else {
            addr / self.config.line_bytes
        }
    }

    /// Splits a line address into `(set_index, tag)`. For power-of-two set
    /// counts the mask/shift pair is bit-identical to the `%` / `/` pair.
    #[inline]
    fn split(&self, line: u64) -> (usize, u64) {
        if self.set_pow2 {
            ((line & self.set_mask) as usize, line >> self.set_shift)
        } else {
            ((line % self.set_count) as usize, line / self.set_count)
        }
    }

    /// Accesses byte address `addr`; on a miss the line is allocated
    /// (write-allocate for stores, fill for loads) and the LRU victim
    /// evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.stats.accesses += 1;
        self.use_clock += 1;
        let (set_index, tag) = self.split(self.line_of(addr));
        let stamp = self.use_clock;
        let assoc = self.assoc;
        let mw = self.mask_words;
        let base = set_index * self.block;
        let set = &mut self.data[base..base + self.block];
        let (tags, rest) = set.split_at_mut(assoc);
        let (stamps, masks) = rest.split_at_mut(assoc);

        // Hit scan: a branchless fixed-trip match mask per 64-way group.
        // An early-exit compare loop mispredicts on every probe (the hit
        // way position is effectively random); accumulating equality bits
        // lets the compiler vectorize the compares and leaves exactly one
        // hit/miss branch.
        for word in 0..mw {
            let lo = word * 64;
            let ways_here = (assoc - lo).min(64);
            let matches = match_mask(&tags[lo..lo + ways_here], tag) & masks[word];
            if matches != 0 {
                // At most one valid way holds a given tag.
                let way = lo + matches.trailing_zeros() as usize;
                // The merged stamp is last-use for LRU (and, vacuously,
                // Random); FIFO keeps it frozen at fill time.
                if !matches!(self.config.replacement, ReplacementPolicy::Fifo) {
                    stamps[way] = stamp;
                }
                let bit = 1u64 << (way % 64);
                if is_write {
                    masks[mw + word] |= bit;
                }
                let prefetched = masks[2 * mw + word] & bit != 0;
                if prefetched {
                    masks[2 * mw + word] &= !bit;
                }
                self.stats.hits += 1;
                return CacheOutcome::Hit { prefetched };
            }
        }

        // Miss: pick invalid way if any, else the policy's victim.
        let victim = pick_victim(
            self.config.replacement,
            assoc,
            stamps,
            &masks[..mw],
            &mut self.rng_state,
        );
        let word = victim / 64;
        let bit = 1u64 << (victim % 64);
        let writeback = if masks[word] & bit != 0 && masks[mw + word] & bit != 0 {
            // Reconstruct the victim's line address from its tag.
            let victim_line = tags[victim] * self.set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        tags[victim] = tag;
        stamps[victim] = stamp;
        masks[word] |= bit;
        if is_write {
            masks[mw + word] |= bit;
        } else {
            masks[mw + word] &= !bit;
        }
        masks[2 * mw + word] &= !bit;
        CacheOutcome::Miss { writeback }
    }

    /// Installs `addr`'s line as a *prefetch* fill: does not count toward
    /// demand hit/miss statistics, marks the line so the first demand
    /// touch can be attributed to the prefetcher, and returns a dirty
    /// victim's line address when the fill evicts one.
    ///
    /// Filling an already-resident line is a no-op (returns `None`).
    pub fn fill_prefetch(&mut self, addr: u64) -> Option<u64> {
        self.use_clock += 1;
        let (set_index, tag) = self.split(self.line_of(addr));
        let stamp = self.use_clock;
        if self.resident(set_index, tag) {
            return None;
        }
        let assoc = self.assoc;
        let mw = self.mask_words;
        let base = set_index * self.block;
        let set = &mut self.data[base..base + self.block];
        let (tags, rest) = set.split_at_mut(assoc);
        let (stamps, masks) = rest.split_at_mut(assoc);
        let victim = pick_victim(
            self.config.replacement,
            assoc,
            stamps,
            &masks[..mw],
            &mut self.rng_state,
        );
        let word = victim / 64;
        let bit = 1u64 << (victim % 64);
        let writeback = if masks[word] & bit != 0 && masks[mw + word] & bit != 0 {
            let victim_line = tags[victim] * self.set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        tags[victim] = tag;
        stamps[victim] = stamp;
        masks[word] |= bit;
        masks[mw + word] &= !bit;
        masks[2 * mw + word] |= bit;
        writeback
    }

    /// Whether `tag` is resident in `set_index`'s set.
    #[inline]
    fn resident(&self, set_index: usize, tag: u64) -> bool {
        let base = set_index * self.block;
        let tags = &self.data[base..base + self.assoc];
        let valid = &self.data[base + 2 * self.assoc..base + 2 * self.assoc + self.mask_words];
        for (word, &valid_word) in valid.iter().enumerate() {
            let lo = word * 64;
            let ways_here = (self.assoc - lo).min(64);
            if match_mask(&tags[lo..lo + ways_here], tag) & valid_word != 0 {
                return true;
            }
        }
        false
    }

    /// Whether `addr`'s line is currently resident (no LRU update, no
    /// stats). Used by tests and by the hierarchy's inclusive-fill checks.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_index, tag) = self.split(self.line_of(addr));
        self.resident(set_index, tag)
    }

    /// Invalidates all lines and forgets statistics; used between
    /// measurement phases.
    pub fn reset(&mut self) {
        self.data.fill(0);
        self.stats = CacheStats::default();
        self.use_clock = 0;
        self.rng_state = 0x9E37_79B9_7F4A_7C15;
    }
}

/// Picks the way to evict from one set: the first invalid way if any, else
/// per policy. First-minimum tie-breaks match `min_by_key`, and the RNG is
/// only consumed when every way is valid, so victim choice is identical to
/// the seed implementation's.
#[inline]
fn pick_victim(
    policy: ReplacementPolicy,
    assoc: usize,
    stamps: &[u64],
    valid: &[u64],
    rng_state: &mut u64,
) -> usize {
    for (word, &v) in valid.iter().enumerate() {
        let ways_here = (assoc - word * 64).min(64);
        // Force bits past the associativity to "valid" so they are never
        // picked; `trailing_zeros` then yields the lowest invalid way,
        // matching the seed's first-invalid scan order.
        let live = if ways_here == 64 {
            v
        } else {
            v | !((1u64 << ways_here) - 1)
        };
        if live != u64::MAX {
            return word * 64 + (!live).trailing_zeros() as usize;
        }
    }
    match policy {
        // LRU keys on last use, FIFO on fill time — both live in the
        // merged stamp array (hits only refresh it under LRU).
        ReplacementPolicy::Lru | ReplacementPolicy::Fifo => first_min(stamps),
        ReplacementPolicy::Random => {
            // Xorshift64: deterministic per cache instance.
            let mut x = *rng_state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *rng_state = x;
            (x % assoc as u64) as usize
        }
    }
}

/// Bitmask of ways whose tag equals `tag` (bit `i` set iff `tags[i]`
/// matches). Dispatching on the common associativities gives LLVM a
/// fixed-trip loop it fully unrolls and vectorizes; the generic fallback
/// keeps the model correct for arbitrary geometries.
#[inline]
fn match_mask(tags: &[u64], tag: u64) -> u64 {
    #[inline]
    fn fixed<const W: usize>(tags: &[u64], tag: u64) -> u64 {
        let tags: &[u64; W] = tags.try_into().expect("dispatched on length");
        let mut matches = 0u64;
        let mut i = 0;
        while i < W {
            matches |= u64::from(tags[i] == tag) << i;
            i += 1;
        }
        matches
    }
    match tags.len() {
        1 => fixed::<1>(tags, tag),
        2 => fixed::<2>(tags, tag),
        4 => fixed::<4>(tags, tag),
        8 => fixed::<8>(tags, tag),
        16 => fixed::<16>(tags, tag),
        _ => {
            let mut matches = 0u64;
            for (i, &t) in tags.iter().enumerate() {
                matches |= u64::from(t == tag) << i;
            }
            matches
        }
    }
}

/// Index of the first minimum of `keys` — the same element `min_by_key`
/// returns. Computed as a (vectorizable) min reduction followed by an
/// equality mask, so random stamp orders cost no branch mispredicts.
#[inline]
fn first_min(keys: &[u64]) -> usize {
    #[inline]
    fn fixed<const W: usize>(keys: &[u64]) -> usize {
        let keys: &[u64; W] = keys.try_into().expect("dispatched on length");
        let mut min = u64::MAX;
        for &key in keys {
            min = min.min(key);
        }
        let mut mask = 0u64;
        let mut i = 0;
        while i < W {
            mask |= u64::from(keys[i] == min) << i;
            i += 1;
        }
        mask.trailing_zeros() as usize
    }
    match keys.len() {
        2 => fixed::<2>(keys),
        4 => fixed::<4>(keys),
        8 => fixed::<8>(keys),
        16 => fixed::<16>(keys),
        _ => {
            let mut best = 0usize;
            let mut best_key = keys[0];
            for (i, &key) in keys.iter().enumerate().skip(1) {
                let better = key < best_key;
                best = if better { i } else { best };
                best_key = if better { key } else { best_key };
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 64);
        assert_eq!(CacheConfig::l2().sets(), 2048);
        assert_eq!(tiny().config().sets(), 4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 1000,
            associativity: 3,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Lru,
        });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, false).is_hit());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3F, false).is_hit(), "same line");
        assert!(!c.access(0x40, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines 0x000 and 0x100 (4 sets × 64 B stride = 256 B).
        c.access(0x000, false);
        c.access(0x100, false);
        // Touch 0x000 so 0x100 becomes LRU.
        c.access(0x000, false);
        // Allocate a third line in set 0: must evict 0x100.
        c.access(0x200, false);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        // Evict 0x000 (LRU): expect its line address in the writeback.
        match c.access(0x200, false) {
            CacheOutcome::Miss {
                writeback: Some(line),
            } => {
                assert_eq!(line, 0, "victim was line zero");
            }
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        match c.access(0x200, false) {
            CacheOutcome::Miss { writeback: None } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false); // clean fill
        c.access(0x000, true); // dirty it via a write hit
        c.access(0x100, false);
        let outcome = c.access(0x200, false);
        assert!(
            matches!(outcome, CacheOutcome::Miss { writeback: Some(_) }),
            "dirtied line must write back, got {outcome:?}"
        );
    }

    #[test]
    fn stats_accounting() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x40, false);
        let stats = *c.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses(), 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(stats.to_string().contains("3 acc"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x0, true);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn empty_cache_hit_rate_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fifo_ignores_reuse_where_lru_respects_it() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Fifo,
        };
        let mut fifo = Cache::new(config);
        // Fill set 0 with lines A (0x000) then B (0x100); touch A again.
        fifo.access(0x000, false);
        fifo.access(0x100, false);
        fifo.access(0x000, false);
        // FIFO evicts A (oldest fill) despite the recent touch...
        fifo.access(0x200, false);
        assert!(!fifo.probe(0x000), "FIFO must evict the oldest fill");
        assert!(fifo.probe(0x100));
        // ...where LRU (see lru_evicts_least_recently_used) keeps A.
    }

    #[test]
    fn random_replacement_is_deterministic_per_instance() {
        let config = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency: Cycles::new(1),
            replacement: ReplacementPolicy::Random,
        };
        let run = || {
            let mut cache = Cache::new(config);
            for i in 0..200u64 {
                cache.access((i * 97) % 4096 * 64, false);
            }
            cache.stats().hits
        };
        assert_eq!(run(), run(), "same seed, same victims, same hits");
    }

    #[test]
    fn replacement_policies_all_stay_correct_under_stress() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = CacheConfig {
                size_bytes: 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency: Cycles::new(1),
                replacement: policy,
            };
            let mut cache = Cache::new(config);
            for i in 0..5_000u64 {
                let addr = (i * 193) % 16_384;
                let outcome = cache.access(addr, i % 3 == 0);
                // A hit must always be confirmed by probe beforehand...
                let _ = outcome;
            }
            let stats = cache.stats();
            assert_eq!(stats.accesses, 5_000, "{policy:?}");
            assert!(stats.hits <= stats.accesses, "{policy:?}");
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // Stream 64 distinct lines (4 KiB) through a 512 B cache, twice.
        for round in 0..2 {
            for i in 0..64u64 {
                let outcome = c.access(i * 64, false);
                if round == 0 {
                    assert!(!outcome.is_hit());
                }
            }
        }
        // Second round still misses: the stream evicted itself.
        assert!(c.stats().hit_rate() < 0.1);
    }
}
