//! A stream (next-line streak) prefetcher at the LLC.
//!
//! Detects runs of sequential line misses and fetches ahead. Prefetching
//! interacts with memory-access gating in an interesting way — it converts
//! long, gateable stalls into hits (good for performance, bad for gating
//! opportunity) while adding DRAM traffic — which is exactly what
//! experiment R-F11 measures.

/// Stream-prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Lines fetched ahead once a streak is detected (0 disables).
    pub degree: u32,
    /// How many recent miss lines are remembered for streak detection.
    pub history: usize,
}

impl PrefetchConfig {
    /// Disabled (the workspace default, keeping the baseline hierarchy
    /// identical to the paper's plain configuration).
    pub fn disabled() -> Self {
        PrefetchConfig {
            degree: 0,
            history: 8,
        }
    }

    /// A conventional degree-4 stream prefetcher.
    pub fn stream() -> Self {
        PrefetchConfig {
            degree: 4,
            history: 16,
        }
    }

    /// Whether prefetching is active.
    pub fn is_enabled(&self) -> bool {
        self.degree > 0
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::disabled()
    }
}

/// Prefetcher activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch fetches issued to DRAM.
    pub issued: u64,
    /// Demand hits on lines brought in by a prefetch.
    pub useful: u64,
}

impl PrefetchStats {
    /// Fraction of prefetches that were later hit by demand accesses.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }

    /// Folds another channel's counters into this one (commutative; used
    /// to aggregate per-channel hierarchies into one cluster-wide view).
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.useful += other.useful;
    }
}

/// A contiguous run of candidate prefetch lines, `first .. first + count`.
///
/// A streak prefetcher's proposals are always the next `degree` lines, so
/// the set is fully described by two words. Returning this instead of a
/// `Vec<u64>` keeps the LLC-miss path allocation-free — the old
/// collect-into-Vec showed up in profiles on every streak-detected miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCandidates {
    first: u64,
    count: u32,
}

impl PrefetchCandidates {
    /// The empty candidate set.
    pub const NONE: PrefetchCandidates = PrefetchCandidates { first: 0, count: 0 };

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of candidate lines.
    pub fn len(&self) -> usize {
        self.count as usize
    }
}

impl IntoIterator for PrefetchCandidates {
    type Item = u64;
    type IntoIter = std::ops::Range<u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.first..self.first + u64::from(self.count)
    }
}

/// The streak detector: remembers recent demand-miss lines and proposes
/// prefetch candidates.
///
/// ```
/// use mapg_mem::{PrefetchConfig, StreamPrefetcher};
///
/// let mut pf = StreamPrefetcher::new(PrefetchConfig::stream());
/// assert!(pf.observe_miss(100).is_empty()); // no streak yet
/// let candidates = pf.observe_miss(101);    // 100 -> 101 is a streak
/// assert_eq!(candidates.into_iter().collect::<Vec<_>>(), vec![102, 103, 104, 105]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    config: PrefetchConfig,
    /// Fixed ring of the most recent `history` observed lines — a bounded
    /// FIFO, exactly a `VecDeque` capped at `history`, but flat so the
    /// per-miss membership scan is a branchless fixed-trip fold instead
    /// of an early-exit deque walk that mispredicts on random misses.
    /// Never-written slots hold [`NO_LINE`], which no probe can match.
    recent_lines: Vec<u64>,
    /// Next ring slot to overwrite (the oldest entry).
    head: usize,
    stats: PrefetchStats,
}

/// Ring-slot sentinel for "never written". Unmatchable: the only probed
/// value is `line - 1` of a non-zero `line`, which is at most
/// `u64::MAX - 1`.
const NO_LINE: u64 = u64::MAX;

impl StreamPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the history window is zero.
    pub fn new(config: PrefetchConfig) -> Self {
        assert!(config.history > 0, "history window must be non-zero");
        StreamPrefetcher {
            config,
            recent_lines: vec![NO_LINE; config.history],
            head: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrefetchConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Reports a demand miss on `line`; returns candidate lines to
    /// prefetch (empty when no streak is detected or prefetching is
    /// disabled). The caller filters already-resident candidates and
    /// reports each actual fetch with [`StreamPrefetcher::record_issued`].
    pub fn observe_miss(&mut self, line: u64) -> PrefetchCandidates {
        if !self.config.is_enabled() {
            return PrefetchCandidates::NONE;
        }
        let streak = line.checked_sub(1).is_some_and(|prev| {
            // Branchless membership: random misses make an early-exit
            // `contains` mispredict; the fold vectorizes instead.
            let mut found = false;
            for &l in &self.recent_lines {
                found |= l == prev;
            }
            found
        });
        self.remember(line);
        if !streak {
            return PrefetchCandidates::NONE;
        }
        self.runway(line)
    }

    /// Reports a demand hit on a line the prefetcher brought in: the
    /// stream is confirmed, so keep the runway ahead of the consumer.
    /// Returns further candidate lines (same contract as
    /// [`StreamPrefetcher::observe_miss`]).
    pub fn observe_prefetch_hit(&mut self, line: u64) -> PrefetchCandidates {
        self.stats.useful += 1;
        if !self.config.is_enabled() {
            return PrefetchCandidates::NONE;
        }
        self.remember(line);
        self.runway(line)
    }

    /// Counts one candidate that was actually fetched from DRAM.
    pub fn record_issued(&mut self) {
        self.stats.issued += 1;
    }

    fn remember(&mut self, line: u64) {
        self.recent_lines[self.head] = line;
        self.head += 1;
        if self.head == self.recent_lines.len() {
            self.head = 0;
        }
    }

    fn runway(&self, line: u64) -> PrefetchCandidates {
        PrefetchCandidates {
            first: line + 1,
            count: self.config.degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(candidates: PrefetchCandidates) -> Vec<u64> {
        candidates.into_iter().collect()
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig::disabled());
        for line in 0..100 {
            assert!(pf.observe_miss(line).is_empty());
        }
        assert_eq!(pf.stats().issued, 0);
    }

    #[test]
    fn streak_triggers_degree_prefetches() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig {
            degree: 3,
            history: 8,
        });
        assert!(pf.observe_miss(10).is_empty());
        assert_eq!(collect(pf.observe_miss(11)), vec![12, 13, 14]);
        assert_eq!(pf.stats().issued, 0, "caller reports actual fetches");
        pf.record_issued();
        assert_eq!(pf.stats().issued, 1);
    }

    #[test]
    fn prefetch_hits_extend_the_stream() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig {
            degree: 2,
            history: 8,
        });
        pf.observe_miss(10);
        assert_eq!(collect(pf.observe_miss(11)), vec![12, 13]);
        // Demand consumes the prefetched line 12: runway extends.
        assert_eq!(collect(pf.observe_prefetch_hit(12)), vec![13, 14]);
        assert_eq!(pf.stats().useful, 1);
        // And the history now contains 12, so a miss on 13 streaks too.
        assert_eq!(collect(pf.observe_miss(13)), vec![14, 15]);
    }

    #[test]
    fn random_misses_do_not_trigger() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig::stream());
        for line in [100u64, 5, 999, 42, 7000] {
            assert!(pf.observe_miss(line).is_empty(), "line {line}");
        }
    }

    #[test]
    fn history_window_forgets() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig {
            degree: 1,
            history: 2,
        });
        pf.observe_miss(10);
        pf.observe_miss(500); // evicts nothing yet (window 2)
        pf.observe_miss(900); // evicts 10
        assert!(pf.observe_miss(11).is_empty(), "line 10 must have aged out");
    }

    #[test]
    fn accuracy_accounting() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig::stream());
        pf.observe_miss(1);
        pf.observe_miss(2);
        pf.record_issued();
        pf.record_issued();
        pf.observe_prefetch_hit(3);
        assert_eq!(pf.stats().useful, 1);
        assert!((pf.stats().accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_line_miss_is_safe() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig::stream());
        assert!(pf.observe_miss(0).is_empty());
        assert_eq!(collect(pf.observe_miss(1)), vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "history window")]
    fn zero_history_rejected() {
        let _ = StreamPrefetcher::new(PrefetchConfig {
            degree: 1,
            history: 0,
        });
    }
}
