//! Deterministic DRAM latency-fault injection.
//!
//! Models intermittent DRAM slowdowns — thermal throttling windows, shared
//! channel interference from devices outside the model, marginal banks —
//! as **latency spikes** scoped to a (bank, time-window) pair: while a
//! window is "spiking", every access to that bank pays extra array latency.
//!
//! Spike decisions are *stateless*: whether bank `b` spikes during window
//! `w` is a pure hash of `(seed, b, w)`, so the decision does not depend on
//! the order in which accesses arrive. This keeps fault injection fully
//! deterministic — two runs with the same seed and configuration see the
//! same faults even when unrelated config changes reorder accesses within
//! a window.

use mapg_units::Cycles;

/// Configuration of DRAM latency-spike injection (disabled by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramFaultConfig {
    /// Probability that a given (bank, window) pair is spiking.
    pub spike_prob: f64,
    /// Extra array latency added to every access served inside a spiking
    /// window.
    pub spike_cycles: Cycles,
    /// Width of the spike-decision time window, in cycles.
    pub window_cycles: u64,
    /// Seed mixed into every spike decision.
    pub seed: u64,
}

impl DramFaultConfig {
    /// No faults: zero probability, zero spike.
    pub fn none() -> Self {
        DramFaultConfig {
            spike_prob: 0.0,
            spike_cycles: Cycles::ZERO,
            window_cycles: 10_000,
            seed: 0,
        }
    }

    /// True when this configuration can never inject a fault.
    pub fn is_nop(&self) -> bool {
        self.spike_prob <= 0.0 || self.spike_cycles == Cycles::ZERO
    }

    /// Checks internal consistency; returns a message on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !self.spike_prob.is_finite() || !(0.0..=1.0).contains(&self.spike_prob) {
            return Err(format!(
                "DRAM spike probability must be in [0, 1], got {}",
                self.spike_prob
            ));
        }
        if !self.is_nop() && self.window_cycles == 0 {
            return Err("DRAM fault window must be non-zero".to_owned());
        }
        Ok(())
    }

    /// Whether `bank` is spiking during the window containing cycle `at`.
    /// A pure function of `(seed, bank, at / window_cycles)`.
    pub fn spikes(&self, bank: usize, at: u64) -> bool {
        if self.is_nop() {
            return false;
        }
        let window = at / self.window_cycles;
        let mut x = self
            .seed
            .wrapping_add((bank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(window.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // SplitMix64 finalizer: full avalanche, so nearby (bank, window)
        // pairs decide independently.
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.spike_prob
    }
}

impl Default for DramFaultConfig {
    fn default() -> Self {
        DramFaultConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> DramFaultConfig {
        DramFaultConfig {
            spike_prob: 0.3,
            spike_cycles: Cycles::new(200),
            window_cycles: 1_000,
            seed: 7,
        }
    }

    #[test]
    fn none_never_spikes() {
        let cfg = DramFaultConfig::none();
        assert!(cfg.is_nop());
        for bank in 0..8 {
            for window in 0..64u64 {
                assert!(!cfg.spikes(bank, window * 10_000));
            }
        }
    }

    #[test]
    fn decisions_are_stateless_and_window_scoped() {
        let cfg = active();
        for bank in 0..8 {
            for base in (0..20u64).map(|w| w * cfg.window_cycles) {
                let first = cfg.spikes(bank, base);
                // Same window → same answer at any offset inside it.
                assert_eq!(first, cfg.spikes(bank, base + cfg.window_cycles - 1));
                assert_eq!(first, cfg.spikes(bank, base));
            }
        }
    }

    #[test]
    fn spike_rate_tracks_probability() {
        let cfg = active();
        let mut hits = 0u32;
        let total = 4_000u32;
        for bank in 0..8usize {
            for window in 0..500u64 {
                if cfg.spikes(bank, window * cfg.window_cycles) {
                    hits += 1;
                }
            }
        }
        let rate = f64::from(hits) / f64::from(total);
        assert!(
            (rate - cfg.spike_prob).abs() < 0.05,
            "observed spike rate {rate} far from configured {}",
            cfg.spike_prob
        );
    }

    #[test]
    fn different_seeds_decide_differently() {
        let a = active();
        let b = DramFaultConfig {
            seed: 8,
            ..active()
        };
        let disagreements = (0..200u64)
            .filter(|&w| a.spikes(0, w * 1_000) != b.spikes(0, w * 1_000))
            .count();
        assert!(disagreements > 0, "seeds must matter");
    }

    #[test]
    fn validation_rejects_bad_probability() {
        let cfg = DramFaultConfig {
            spike_prob: 1.5,
            ..active()
        };
        assert!(cfg.validate().is_err());
        assert!(active().validate().is_ok());
        assert!(DramFaultConfig::none().validate().is_ok());
    }
}
