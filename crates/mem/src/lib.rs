//! Memory-hierarchy substrate for the MAPG reproduction.
//!
//! MAPG gates a core's power during last-level-cache misses, so the quantity
//! this crate must get right is the **distribution of miss latencies** the
//! core observes: which references miss, how long each miss takes given DRAM
//! bank state and contention, and how misses overlap. The model is a
//! two-level set-associative cache hierarchy with MSHRs in front of a banked
//! DRAM with row-buffer tracking:
//!
//! - [`Cache`] — set-associative, true-LRU, write-back/write-allocate;
//! - [`MshrFile`] — bounds outstanding misses and merges secondary misses;
//! - [`Dram`] — per-bank open-row state, DDR3-class timing, bus serialization
//!   and periodic refresh;
//! - [`MemoryHierarchy`] — glues the levels together and produces, for every
//!   reference, a completion timestamp plus the level that served it.
//!
//! Timing is *analytic-incremental* rather than fully event-driven: each
//! resource (bank, bus) tracks the cycle at which it next becomes free, and
//! an access's latency is computed by walking those resources forward. This
//! reproduces queueing, bank conflicts and row locality at a fraction of the
//! cost of a discrete-event simulator — and cost matters, because every
//! policy experiment in `mapg-bench` re-runs the whole hierarchy dozens of
//! times.
//!
//! # Example
//!
//! ```
//! use mapg_mem::{HierarchyConfig, MemoryHierarchy, ServiceLevel};
//! use mapg_trace::{AccessKind, MemAccess};
//! use mapg_units::Cycle;
//!
//! let mut memory = MemoryHierarchy::new(HierarchyConfig::default());
//! let access = MemAccess { addr: 0x4000, pc: 0x100, kind: AccessKind::Load, dependent: false };
//! let response = memory.access(Cycle::new(0), &access);
//! // A cold access misses everywhere and is served by DRAM.
//! assert_eq!(response.level, ServiceLevel::Dram);
//! assert!(response.completion > Cycle::new(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;
mod error;
mod faults;
mod hierarchy;
mod mshr;
mod prefetch;
mod reference;
mod stats;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats, ReplacementPolicy};
pub use dram::{Dram, DramConfig, DramStats, PagePolicy, RowBufferOutcome};
pub use error::ConfigError;
pub use faults::DramFaultConfig;
pub use hierarchy::{
    AccessResponse, HierarchyConfig, HierarchyStats, MemoryHierarchy, ServiceLevel,
};
pub use mshr::{MshrFile, MshrOutcome};
pub use prefetch::{PrefetchCandidates, PrefetchConfig, PrefetchStats, StreamPrefetcher};
pub use reference::ReferenceHierarchy;
pub use stats::LatencyHistogram;
