//! The full hierarchy: L1 → L2 (LLC) → MSHRs → DRAM.

use mapg_trace::{AccessKind, MemAccess};
use mapg_units::{Cycle, Cycles};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig, DramStats, RowBufferOutcome};
use crate::error::ConfigError;
use crate::faults::DramFaultConfig;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::{PrefetchCandidates, PrefetchConfig, PrefetchStats, StreamPrefetcher};
use crate::stats::LatencyHistogram;

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2, the last-level cache.
    pub l2: CacheConfig,
    /// DRAM device and controller.
    pub dram: DramConfig,
    /// MSHR entries at the LLC (bounds miss-level parallelism).
    pub mshr_entries: usize,
    /// Stream prefetcher at the LLC (disabled by default).
    pub prefetch: PrefetchConfig,
    /// Deterministic DRAM latency-fault injection (disabled by default).
    pub dram_faults: DramFaultConfig,
}

impl HierarchyConfig {
    /// The workspace default: 32 KiB L1 / 2 MiB L2 / DDR3-1333, 16 MSHRs.
    pub fn baseline() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram: DramConfig::ddr3_1333(),
            mshr_entries: 16,
            prefetch: PrefetchConfig::disabled(),
            dram_faults: DramFaultConfig::none(),
        }
    }

    /// The baseline hierarchy with a degree-2 stream prefetcher at the
    /// LLC (experiment R-F11).
    pub fn with_stream_prefetcher() -> Self {
        HierarchyConfig {
            prefetch: PrefetchConfig::stream(),
            ..HierarchyConfig::baseline()
        }
    }

    /// Returns a copy with the given DRAM fault injection configured.
    pub fn with_dram_faults(mut self, faults: DramFaultConfig) -> Self {
        self.dram_faults = faults;
        self
    }

    /// Checks the DRAM, fault-injection and MSHR legs for consistency;
    /// the error's message matches the corresponding panicking path.
    ///
    /// Front-ends that accept hierarchy parameters from users (the
    /// `mapgsim` CLI, the fuzz scenario generator) validate here so bad
    /// input comes back as a diagnostic instead of a panic.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        self.dram.try_validate()?;
        self.dram_faults.validate().map_err(ConfigError::Fault)?;
        if self.mshr_entries == 0 {
            return Err(ConfigError::ZeroMshrs);
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::baseline()
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// L1 hit.
    L1,
    /// L2 (LLC) hit.
    L2,
    /// Served by DRAM — the stall class MAPG gates on.
    Dram,
}

/// The hierarchy's answer for one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResponse {
    /// Timestamp at which the data is available to the core.
    pub completion: Cycle,
    /// Level that served the reference.
    pub level: ServiceLevel,
    /// Row-buffer behaviour when DRAM was involved.
    pub row: Option<RowBufferOutcome>,
}

impl AccessResponse {
    /// Latency relative to the request time.
    pub fn latency(&self, issued: Cycle) -> Cycles {
        self.completion.saturating_since(issued)
    }
}

/// Aggregated hierarchy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Distribution of DRAM-serviced (LLC-miss) latencies.
    pub miss_latency: LatencyHistogram,
    /// References that had to wait for a free MSHR.
    pub mshr_stalls: u64,
    /// Prefetcher activity.
    pub prefetch: PrefetchStats,
}

impl HierarchyStats {
    /// Folds another hierarchy's counters into this one: per-level cache
    /// and DRAM counters add, the miss-latency histograms merge
    /// bucket-wise. Commutative and associative, but callers aggregating
    /// a multi-channel topology apply channels in index order anyway so
    /// the path stays deterministic by construction.
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
        self.miss_latency.merge(&other.miss_latency);
        self.mshr_stalls += other.mshr_stalls;
        self.prefetch.merge(&other.prefetch);
    }

    /// LLC misses per kilo-instruction given the retired instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        assert!(instructions > 0, "MPKI requires a non-zero denominator");
        self.l2.misses() as f64 * 1000.0 / instructions as f64
    }
}

/// The L1 → L2 → DRAM hierarchy with LLC MSHRs.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    dram: Dram,
    mshrs: MshrFile,
    prefetcher: StreamPrefetcher,
    /// Prefetch candidates waiting for their issue time (keeps DRAM calls
    /// chronological; see [`MemoryHierarchy::drain_prefetches`]).
    pending_prefetches: Vec<(Cycle, u64)>,
    /// Exact minimum `ready` time over `pending_prefetches`, `u64::MAX`
    /// when the queue is empty. `drain_prefetches` runs on *every* access,
    /// but nothing can change until time reaches this mark, so the common
    /// case collapses to a single compare instead of a queue sweep.
    next_prefetch_ready: Cycle,
    miss_latency: LatencyHistogram,
    mshr_stalls: u64,
    obs: mapg_obs::ObsHandle,
}

impl MemoryHierarchy {
    /// Builds a cold hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any component configuration is inconsistent (see
    /// [`CacheConfig::sets`], [`Dram::new`], [`MshrFile::new`]).
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            dram: Dram::with_faults(config.dram, config.dram_faults),
            mshrs: MshrFile::new(config.mshr_entries),
            prefetcher: StreamPrefetcher::new(config.prefetch),
            pending_prefetches: Vec::new(),
            next_prefetch_ready: Cycle::new(u64::MAX),
            miss_latency: LatencyHistogram::new(),
            mshr_stalls: 0,
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        }
    }

    /// Fallible [`MemoryHierarchy::new`]: DRAM/MSHR/fault-injection
    /// inconsistencies come back as [`ConfigError`] values instead of
    /// panics (see [`HierarchyConfig::try_validate`]).
    pub fn try_new(config: HierarchyConfig) -> Result<Self, ConfigError> {
        config.try_validate()?;
        Ok(MemoryHierarchy::new(config))
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Attaches an observability handle to the hierarchy and its DRAM:
    /// LLC-miss metrics and per-bank fault events flow through it.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.dram.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Serves one reference issued at `now`.
    pub fn access(&mut self, now: Cycle, access: &MemAccess) -> AccessResponse {
        // Start pulling the L2 set's metadata toward the host caches
        // before the L1 probe: L2 planes are too large to stay resident,
        // and on the L1-miss path the probe below would otherwise eat the
        // full host memory latency. Pure hint, no simulated effect.
        self.l2.prefetch_probe(access.addr);
        self.drain_prefetches(now);
        let is_write = access.kind == AccessKind::Store;
        let l1_done = now + self.config.l1.hit_latency;
        match self.l1.access(access.addr, is_write) {
            crate::cache::CacheOutcome::Hit { .. } => {
                return AccessResponse {
                    completion: l1_done,
                    level: ServiceLevel::L1,
                    row: None,
                };
            }
            crate::cache::CacheOutcome::Miss { writeback } => {
                // An L1 dirty victim is written into L2; it stays on-chip
                // unless L2 in turn evicts a dirty line, which then drains
                // to DRAM off the critical path.
                if let Some(victim_line) = writeback {
                    let victim_addr = victim_line * self.config.l1.line_bytes;
                    if let crate::cache::CacheOutcome::Miss {
                        writeback: Some(l2_victim),
                    } = self.l2.access(victim_addr, true)
                    {
                        let l2_victim_addr = l2_victim * self.config.l2.line_bytes;
                        let _ = self.dram.access(l1_done, l2_victim_addr, true);
                    }
                }
            }
        }

        let l2_done = l1_done + self.config.l2.hit_latency;
        match self.l2.access(access.addr, is_write) {
            crate::cache::CacheOutcome::Hit { prefetched } => {
                if prefetched {
                    // Stream confirmed: keep the runway ahead of the
                    // consumer.
                    let line = self.l2.line_of(access.addr);
                    let candidates = self.prefetcher.observe_prefetch_hit(line);
                    self.fetch_prefetch_candidates(candidates, l2_done);
                }
                AccessResponse {
                    completion: l2_done,
                    level: ServiceLevel::L2,
                    row: None,
                }
            }
            crate::cache::CacheOutcome::Miss { writeback } => {
                // L2 dirty victim goes to DRAM off the critical path: it
                // occupies the bank/bus (affecting later accesses) but the
                // demand miss does not wait for it.
                if let Some(victim_line) = writeback {
                    let victim_addr = victim_line * self.config.l2.line_bytes;
                    let _ = self.dram.access(l2_done, victim_addr, true);
                }
                self.dram_fill(now, l2_done, access)
            }
        }
    }

    /// Handles the DRAM leg of an LLC miss, including MSHR allocation.
    fn dram_fill(&mut self, issued: Cycle, mut ready: Cycle, access: &MemAccess) -> AccessResponse {
        let line = self.l2.line_of(access.addr);
        let is_write = access.kind == AccessKind::Store;
        loop {
            match self.mshrs.lookup(ready, line) {
                MshrOutcome::Merged { completion } => {
                    // Secondary miss: ride the in-flight fetch.
                    return AccessResponse {
                        completion: completion.max(ready),
                        level: ServiceLevel::Dram,
                        row: None,
                    };
                }
                MshrOutcome::Full { free_at } => {
                    self.mshr_stalls += 1;
                    ready = free_at + Cycles::new(1);
                }
                MshrOutcome::Allocated => {
                    let (completion, row) = self.dram.access(ready, access.addr, is_write);
                    self.mshrs.commit(line, completion);
                    self.miss_latency
                        .record(completion.saturating_since(issued));
                    self.obs.count("llc_misses", 1);
                    self.obs
                        .observe("miss_latency", completion.saturating_since(issued).raw());
                    self.issue_prefetches(line, completion);
                    return AccessResponse {
                        completion,
                        level: ServiceLevel::Dram,
                        row: Some(row),
                    };
                }
            }
        }
    }

    /// Streak-detects on the demand-miss `line` and fetches candidate
    /// lines into L2 off the critical path.
    fn issue_prefetches(&mut self, line: u64, after: Cycle) {
        let candidates = self.prefetcher.observe_miss(line);
        self.fetch_prefetch_candidates(candidates, after);
    }

    /// Queues not-yet-resident candidate lines for prefetching once time
    /// reaches `ready`. Candidates are not fetched immediately because the
    /// incremental DRAM model serializes by call order: issuing a fetch at
    /// a future timestamp would block demand accesses that arrive earlier.
    fn fetch_prefetch_candidates(&mut self, candidates: PrefetchCandidates, ready: Cycle) {
        const PENDING_CAP: usize = 32;
        for candidate in candidates {
            let addr = candidate * self.config.l2.line_bytes;
            if self.l2.probe(addr) {
                continue;
            }
            if self.pending_prefetches.len() >= PENDING_CAP {
                // Drop the stalest. It may have held the cached minimum;
                // re-derive it (rare: only under sustained overflow).
                self.pending_prefetches.remove(0);
                self.next_prefetch_ready = self
                    .pending_prefetches
                    .iter()
                    .map(|&(r, _)| r)
                    .fold(Cycle::new(u64::MAX), Cycle::min);
            }
            self.pending_prefetches.push((ready, addr));
            self.next_prefetch_ready = self.next_prefetch_ready.min(ready);
        }
    }

    /// Issues queued prefetches whose time has come. Prefetches are lowest
    /// priority: they only take idle DRAM slots ([`Dram::try_access_idle`])
    /// and are dropped under load, like real prefetch throttling.
    ///
    /// This runs at the top of every demand access, so it is gated on the
    /// cached [`next_prefetch_ready`](Self::next_prefetch_ready) minimum:
    /// until time reaches the earliest queued issue time, a sweep could
    /// only re-keep every entry, so skipping it is behaviour-preserving.
    /// When a sweep does run it compacts the queue in place (stable order,
    /// no allocation) instead of rebuilding it through a scratch `Vec`.
    fn drain_prefetches(&mut self, now: Cycle) {
        if self.next_prefetch_ready > now {
            return;
        }
        let mut write = 0;
        let mut min_ready = Cycle::new(u64::MAX);
        for read in 0..self.pending_prefetches.len() {
            let (ready, addr) = self.pending_prefetches[read];
            if ready > now {
                self.pending_prefetches[write] = (ready, addr);
                write += 1;
                min_ready = min_ready.min(ready);
                continue;
            }
            if self.l2.probe(addr) {
                continue; // demand beat us to it
            }
            // Up to ~one access worth of queueing is tolerated; beyond
            // that the prefetch is shed (drop-under-load throttling).
            let slack = Cycles::new(80);
            if self
                .dram
                .try_access_within(now, slack, addr, false)
                .is_none()
            {
                continue; // dropped under load
            }
            self.prefetcher.record_issued();
            if let Some(victim_line) = self.l2.fill_prefetch(addr) {
                let victim_addr = victim_line * self.config.l2.line_bytes;
                let _ = self.dram.access(now, victim_addr, true);
            }
        }
        self.pending_prefetches.truncate(write);
        self.next_prefetch_ready = min_ready;
    }

    /// Number of misses in flight at `now` (MSHR occupancy).
    pub fn misses_in_flight(&mut self, now: Cycle) -> usize {
        self.mshrs.in_flight(now)
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
            miss_latency: self.miss_latency.clone(),
            mshr_stalls: self.mshr_stalls,
            prefetch: *self.prefetcher.stats(),
        }
    }

    /// Cold-resets every component and clears statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.dram.reset();
        self.mshrs.reset();
        self.prefetcher = StreamPrefetcher::new(self.config.prefetch);
        self.pending_prefetches.clear();
        self.next_prefetch_ready = Cycle::new(u64::MAX);
        self.miss_latency = LatencyHistogram::new();
        self.mshr_stalls = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64) -> MemAccess {
        MemAccess {
            addr,
            pc: 0x400,
            kind: AccessKind::Load,
            dependent: false,
        }
    }

    fn store(addr: u64) -> MemAccess {
        MemAccess {
            addr,
            pc: 0x404,
            kind: AccessKind::Store,
            dependent: false,
        }
    }

    #[test]
    fn cold_access_goes_to_dram_then_warms() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let first = m.access(Cycle::new(0), &load(0x1000));
        assert_eq!(first.level, ServiceLevel::Dram);
        assert!(first.row.is_some());

        let second = m.access(first.completion, &load(0x1000));
        assert_eq!(second.level, ServiceLevel::L1);
        assert_eq!(
            second.latency(first.completion),
            CacheConfig::l1d().hit_latency
        );
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let t0 = Cycle::new(0);
        let dram_resp = m.access(t0, &load(0x40_0000));
        let dram_latency = dram_resp.latency(t0);

        // Evict from L1 but not L2 by touching many L1-conflicting lines...
        // simpler: a fresh line that L2 holds after a DRAM fill, then evict
        // L1 by streaming 64 sets × 8 ways of distinct lines.
        let mut t = dram_resp.completion;
        for i in 0..1024u64 {
            let r = m.access(t, &load(0x100_0000 + i * 64));
            t = r.completion;
        }
        let l2_resp = m.access(t, &load(0x40_0000));
        assert_eq!(l2_resp.level, ServiceLevel::L2);
        let l2_latency = l2_resp.latency(t);

        let l1_resp = m.access(l2_resp.completion, &load(0x40_0000));
        let l1_latency = l1_resp.latency(l2_resp.completion);

        assert!(l1_latency < l2_latency, "{l1_latency} !< {l2_latency}");
        assert!(l2_latency < dram_latency, "{l2_latency} !< {dram_latency}");
    }

    #[test]
    fn secondary_miss_merges_into_flight() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let t0 = Cycle::new(0);
        let first = m.access(t0, &load(0x2000));
        // Another reference to the same line before the fill completes: it
        // must complete with (not after) the in-flight fetch. The L2 has
        // already allocated the line, so model-wise this manifests as the
        // reference hitting the in-flight MSHR via the cache... with this
        // analytic model the L2 allocation happens at access time, so a
        // subsequent access hits in L2. Verify it at least never exceeds
        // the first completion by a full DRAM latency.
        let second = m.access(Cycle::new(1), &load(0x2008));
        assert!(second.completion <= first.completion);
    }

    #[test]
    fn mshr_pressure_counts_stalls() {
        let config = HierarchyConfig {
            mshr_entries: 1,
            ..HierarchyConfig::baseline()
        };
        let mut m = MemoryHierarchy::new(config);
        // Two distinct-line misses at the same instant: the second must
        // wait for the single MSHR.
        let a = m.access(Cycle::new(0), &load(0x0));
        let b = m.access(Cycle::new(0), &load(0x10_0000));
        assert!(b.completion > a.completion);
        assert_eq!(m.stats().mshr_stalls, 1);
    }

    #[test]
    fn store_misses_allocate() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let first = m.access(Cycle::new(0), &store(0x3000));
        assert_eq!(first.level, ServiceLevel::Dram);
        let second = m.access(first.completion, &load(0x3000));
        assert_eq!(second.level, ServiceLevel::L1, "write-allocate");
    }

    #[test]
    fn stats_snapshot_consistency() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut t = Cycle::new(0);
        for i in 0..100u64 {
            let r = m.access(t, &load(i * 64));
            t = r.completion;
        }
        let stats = m.stats();
        assert_eq!(stats.l1.accesses, 100);
        assert_eq!(stats.l1.hits, 0, "all lines distinct");
        assert_eq!(stats.l2.accesses, 100);
        assert_eq!(stats.miss_latency.count(), stats.l2.misses());
        assert!(stats.llc_mpki(100_000) > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero denominator")]
    fn mpki_rejects_zero_instructions() {
        let m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let _ = m.stats().llc_mpki(0);
    }

    #[test]
    fn reset_restores_cold_behaviour() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        let r1 = m.access(Cycle::new(0), &load(0x1000));
        m.reset();
        let r2 = m.access(Cycle::new(0), &load(0x1000));
        assert_eq!(r1.level, r2.level);
        assert_eq!(m.stats().l1.accesses, 1);
    }

    #[test]
    fn misses_in_flight_tracks_mshrs() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
        assert_eq!(m.misses_in_flight(Cycle::new(0)), 0);
        let r = m.access(Cycle::new(0), &load(0x5000));
        assert_eq!(m.misses_in_flight(Cycle::new(0)), 1);
        assert_eq!(m.misses_in_flight(r.completion), 0);
    }

    #[test]
    fn stream_prefetcher_converts_misses_to_l2_hits() {
        let mut plain = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut prefetching = MemoryHierarchy::new(HierarchyConfig::with_stream_prefetcher());
        // A long sequential line stream over a working set far beyond L2.
        let run = |m: &mut MemoryHierarchy| {
            let mut t = Cycle::new(0);
            let mut dram_served = 0u64;
            for i in 0..20_000u64 {
                let r = m.access(t, &load(i * 64));
                if r.level == ServiceLevel::Dram {
                    dram_served += 1;
                }
                t = r.completion;
            }
            dram_served
        };
        let plain_misses = run(&mut plain);
        let prefetched_misses = run(&mut prefetching);
        assert!(
            prefetched_misses < plain_misses / 2,
            "stream prefetcher should absorb most sequential misses: \
             {prefetched_misses} vs {plain_misses}"
        );
        let stats = prefetching.stats();
        assert!(stats.prefetch.issued > 0);
        assert!(
            stats.prefetch.accuracy() > 0.8,
            "sequential stream should make prefetches useful: {:.2}",
            stats.prefetch.accuracy()
        );
    }

    /// Splitting one access stream across two hierarchies and merging the
    /// stats must reproduce every counter the combined run would have
    /// produced *for the per-access counters* (timing-coupled counters
    /// like row hits differ, so the check uses disjoint streams).
    #[test]
    fn merged_stats_equal_the_sum_of_their_parts() {
        let run = |seed: u64| {
            let mut m = MemoryHierarchy::new(HierarchyConfig::baseline());
            let mut t = Cycle::new(0);
            let mut addr = seed;
            for _ in 0..500 {
                addr = addr.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
                let r = m.access(t, &load((addr % (1 << 28)) & !63));
                t = r.completion;
            }
            m.stats()
        };
        let a = run(0x9E37_79B9_7F4A_7C15);
        let b = run(0x1234_5678_9ABC_DEF1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.l1.accesses, a.l1.accesses + b.l1.accesses);
        assert_eq!(merged.l2.hits, a.l2.hits + b.l2.hits);
        assert_eq!(
            merged.dram.accesses(),
            a.dram.accesses() + b.dram.accesses()
        );
        assert_eq!(merged.dram.activates, a.dram.activates + b.dram.activates);
        assert_eq!(merged.mshr_stalls, a.mshr_stalls + b.mshr_stalls);
        assert_eq!(
            merged.prefetch.issued,
            a.prefetch.issued + b.prefetch.issued
        );
        assert_eq!(
            merged.miss_latency.count(),
            a.miss_latency.count() + b.miss_latency.count()
        );
        assert_eq!(
            merged.miss_latency.max(),
            a.miss_latency.max().max(b.miss_latency.max())
        );
    }

    #[test]
    fn prefetcher_stays_silent_on_random_streams() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::with_stream_prefetcher());
        let mut t = Cycle::new(0);
        // Widely-spaced pseudo-random lines: no streaks.
        let mut addr = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2_000 {
            addr = addr.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
            let r = m.access(t, &load((addr % (1 << 30)) & !63));
            t = r.completion;
        }
        let stats = m.stats();
        assert!(
            stats.prefetch.issued < 200,
            "random stream should trigger few prefetches: {}",
            stats.prefetch.issued
        );
    }
}
