//! Banked DRAM with row-buffer state, bus serialization and refresh.
//!
//! All timing parameters are expressed in **core cycles** — the hierarchy's
//! single clock domain. The defaults approximate a DDR3-1333 part behind a
//! 2 GHz core: a row-buffer hit costs ~75 core cycles end to end, a row
//! conflict ~190, matching the 40–120 ns window the original evaluation's
//! stalls fall into. Making DRAM time explicit in core cycles keeps the
//! entire gating analysis in one unit system ([`mapg_units::Cycles`]).

use mapg_units::{Cycle, Cycles};

use crate::faults::DramFaultConfig;

use core::fmt;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Keep the row open after an access (bets on row-buffer locality;
    /// the default, matching the evaluation's workloads).
    #[default]
    Open,
    /// Auto-precharge after every access (bets against locality: every
    /// access pays an activate, no access ever pays a precharge).
    Closed,
}

/// DRAM timing and geometry configuration (all times in core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independently schedulable banks.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Activate (row open) latency, tRCD.
    pub t_rcd: Cycles,
    /// Column access latency, tCAS.
    pub t_cas: Cycles,
    /// Precharge (row close) latency, tRP.
    pub t_rp: Cycles,
    /// Data-burst occupancy of the shared channel per access.
    pub t_burst: Cycles,
    /// Fixed controller + interconnect overhead added to every access.
    pub controller_overhead: Cycles,
    /// Refresh interval, tREFI (0 disables refresh).
    pub refresh_interval: Cycles,
    /// Refresh duration, tRFC.
    pub refresh_duration: Cycles,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// DDR3-1333-class part behind a 2 GHz core.
    pub fn ddr3_1333() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 8 << 10,
            t_rcd: Cycles::new(27),
            t_cas: Cycles::new(27),
            t_rp: Cycles::new(27),
            t_burst: Cycles::new(10),
            controller_overhead: Cycles::new(38),
            refresh_interval: Cycles::new(15_600),
            refresh_duration: Cycles::new(320),
            page_policy: PagePolicy::Open,
        }
    }

    /// Returns a copy using a different page policy.
    pub fn with_page_policy(mut self, page_policy: PagePolicy) -> Self {
        self.page_policy = page_policy;
        self
    }

    /// Returns a copy with the three core timing parameters (tRCD, tCAS,
    /// tRP) scaled by `factor` — the "memory wall" sensitivity knob of
    /// experiment R-F6.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_latency_scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "latency factor must be positive, got {factor}"
        );
        let mut scaled = *self;
        scaled.t_rcd = self.t_rcd.scale(factor);
        scaled.t_cas = self.t_cas.scale(factor);
        scaled.t_rp = self.t_rp.scale(factor);
        scaled.controller_overhead = self.controller_overhead.scale(factor);
        scaled
    }

    fn validate(&self) {
        assert!(self.banks > 0, "DRAM needs at least one bank");
        assert!(self.row_bytes >= 64, "row must hold at least one line");
        if self.refresh_interval.raw() > 0 {
            assert!(
                self.refresh_duration < self.refresh_interval,
                "refresh duration must be shorter than the interval"
            );
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1333()
    }
}

/// How the row buffer treated an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open: column access only.
    Hit,
    /// A different row was open: precharge + activate + column access.
    Conflict,
    /// The bank had no open row: activate + column access.
    Empty,
}

/// Running DRAM activity counters (feed the DRAM energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row activations performed (conflicts + empty-bank opens).
    pub activates: u64,
    /// Accesses delayed by a refresh window.
    pub refresh_stalls: u64,
    /// Total cycles the data bus was occupied.
    pub bus_busy_cycles: u64,
    /// Accesses slowed by an injected latency-spike fault.
    pub fault_spikes: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc ({} rd/{} wr), {:.1}% row hit, {} act",
            self.accesses(),
            self.reads,
            self.writes,
            self.row_hit_rate() * 100.0,
            self.activates
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    next_free: Cycle,
}

/// The DRAM device + controller model.
///
/// ```
/// use mapg_mem::{Dram, DramConfig, RowBufferOutcome};
/// use mapg_units::Cycle;
///
/// let mut dram = Dram::new(DramConfig::ddr3_1333());
/// let (done_a, first) = dram.access(Cycle::new(0), 0x0000, false);
/// let (done_b, second) = dram.access(done_a, 0x0040, false);
/// assert_eq!(first, RowBufferOutcome::Empty);
/// assert_eq!(second, RowBufferOutcome::Hit); // same row, still open
/// assert!(done_b > done_a);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    faults: DramFaultConfig,
    banks: Vec<Bank>,
    bus_free: Cycle,
    /// `row_bytes.trailing_zeros()` when the row size is a power of two:
    /// `addr >> row_shift` replaces a 64-bit division per access.
    row_shift: u32,
    row_pow2: bool,
    /// `banks - 1` / `banks.trailing_zeros()` when the bank count is a
    /// power of two: mask-and-shift replaces the `%` / `/` pair.
    bank_mask: u64,
    bank_shift: u32,
    bank_pow2: bool,
    stats: DramStats,
    obs: mapg_obs::ObsHandle,
}

impl Dram {
    /// Creates the device with all banks precharged and no fault injection.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero banks, row smaller
    /// than a line, refresh duration ≥ interval).
    pub fn new(config: DramConfig) -> Self {
        Dram::with_faults(config, DramFaultConfig::none())
    }

    /// Creates the device with deterministic latency-fault injection (see
    /// [`DramFaultConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if either configuration is inconsistent.
    pub fn with_faults(config: DramConfig, faults: DramFaultConfig) -> Self {
        config.validate();
        if let Err(message) = faults.validate() {
            panic!("{message}");
        }
        let bank_count = u64::from(config.banks);
        Dram {
            banks: vec![Bank::default(); config.banks as usize],
            bus_free: Cycle::ZERO,
            row_shift: config.row_bytes.trailing_zeros(),
            row_pow2: config.row_bytes.is_power_of_two(),
            bank_mask: bank_count - 1,
            bank_shift: bank_count.trailing_zeros(),
            bank_pow2: bank_count.is_power_of_two(),
            stats: DramStats::default(),
            faults,
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        }
    }

    /// The row address containing byte address `addr`.
    #[inline]
    fn row_of(&self, addr: u64) -> u64 {
        if self.row_pow2 {
            addr >> self.row_shift
        } else {
            addr / self.config.row_bytes
        }
    }

    /// Splits a row address into `(bank_index, row_id)`. For power-of-two
    /// bank counts the mask/shift pair is bit-identical to `%` / `/`.
    #[inline]
    fn split(&self, row: u64) -> (usize, u64) {
        if self.bank_pow2 {
            ((row & self.bank_mask) as usize, row >> self.bank_shift)
        } else {
            let bank_count = self.banks.len() as u64;
            ((row % bank_count) as usize, row / bank_count)
        }
    }

    /// Attaches an observability handle; access counters and injected
    /// latency-spike events (per-bank scope) flow through it.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.obs = obs;
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Serves one line access arriving at the controller at `now`; returns
    /// the completion timestamp and the row-buffer outcome.
    pub fn access(&mut self, now: Cycle, addr: u64, is_write: bool) -> (Cycle, RowBufferOutcome) {
        let (bank_index, row_id) = self.split(self.row_of(addr));

        // The command can issue once the bank is free...
        let mut start = now.max(self.banks[bank_index].next_free);
        // ...and outside any refresh window.
        start = self.apply_refresh(start);

        let (mut array_latency, outcome) = match self.banks[bank_index].open_row {
            Some(open) if open == row_id => {
                self.stats.row_hits += 1;
                (self.config.t_cas, RowBufferOutcome::Hit)
            }
            Some(_) => {
                self.stats.activates += 1;
                (
                    self.config.t_rp + self.config.t_rcd + self.config.t_cas,
                    RowBufferOutcome::Conflict,
                )
            }
            None => {
                self.stats.activates += 1;
                (
                    self.config.t_rcd + self.config.t_cas,
                    RowBufferOutcome::Empty,
                )
            }
        };

        // Injected fault: a spiking (bank, window) pair slows the array
        // access. The decision is a pure hash of (seed, bank, window), so
        // it is independent of access order (see `DramFaultConfig`).
        if self.faults.spikes(bank_index, start.raw()) {
            array_latency += self.faults.spike_cycles;
            self.stats.fault_spikes += 1;
            self.obs.emit(
                start.raw(),
                mapg_obs::Scope::Bank(bank_index as u32),
                mapg_obs::EventKind::FaultInjected(mapg_obs::FaultKind::DramSpike),
            );
            self.obs.count("dram_fault_spikes", 1);
        }
        self.obs.count("dram_accesses", 1);

        // Data leaves the array, then must win the shared channel.
        let data_ready = start + array_latency;
        let burst_start = data_ready.max(self.bus_free);
        let burst_end = burst_start + self.config.t_burst;
        self.bus_free = burst_end;
        self.stats.bus_busy_cycles += self.config.t_burst.raw();

        let completion = burst_end + self.config.controller_overhead;
        let bank = &mut self.banks[bank_index];
        bank.next_free = burst_end;
        match self.config.page_policy {
            PagePolicy::Open => bank.open_row = Some(row_id),
            PagePolicy::Closed => {
                // Auto-precharge: the row closes with the burst; the
                // precharge overlaps the bus transfer in this first-order
                // model, so no extra bank-busy time is charged.
                bank.open_row = None;
            }
        }

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        (completion, outcome)
    }

    /// Serves a *low-priority* access (a prefetch) only if the target bank
    /// and the channel are idle at `now`; returns `None` — without touching
    /// any state — when the access would have to queue behind other work.
    ///
    /// This approximates demand-priority scheduling in the incremental
    /// timing model: real controllers deprioritize or drop prefetches under
    /// load, and an analytic bank-free-time model cannot reorder a queue
    /// after the fact, so contended prefetches are dropped instead.
    pub fn try_access_idle(
        &mut self,
        now: Cycle,
        addr: u64,
        is_write: bool,
    ) -> Option<(Cycle, RowBufferOutcome)> {
        self.try_access_within(now, Cycles::ZERO, addr, is_write)
    }

    /// Like [`Dram::try_access_idle`] but tolerates the target resources
    /// becoming free within `slack` cycles — a bounded queue depth for
    /// low-priority traffic. Larger slack raises prefetch coverage at the
    /// cost of (bounded) extra queueing for demand accesses that arrive
    /// just behind the prefetch.
    pub fn try_access_within(
        &mut self,
        now: Cycle,
        slack: Cycles,
        addr: u64,
        is_write: bool,
    ) -> Option<(Cycle, RowBufferOutcome)> {
        let (bank_index, _) = self.split(self.row_of(addr));
        let deadline = now + slack;
        if self.banks[bank_index].next_free > deadline || self.bus_free > deadline {
            return None;
        }
        Some(self.access(now, addr, is_write))
    }

    /// If `start` falls inside a refresh window, pushes it to the window's
    /// end and counts the stall.
    fn apply_refresh(&mut self, start: Cycle) -> Cycle {
        let interval = self.config.refresh_interval.raw();
        if interval == 0 {
            return start;
        }
        let offset = start.raw() % interval;
        if offset < self.config.refresh_duration.raw() {
            self.stats.refresh_stalls += 1;
            let pushed = start.raw() - offset + self.config.refresh_duration.raw();
            Cycle::new(pushed)
        } else {
            start
        }
    }

    /// Precharges all banks and clears statistics.
    pub fn reset(&mut self) {
        for bank in &mut self.banks {
            *bank = Bank::default();
        }
        self.bus_free = Cycle::ZERO;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_refresh() -> DramConfig {
        DramConfig {
            refresh_interval: Cycles::ZERO,
            ..DramConfig::ddr3_1333()
        }
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        // Open row 0 of bank 0.
        let (t0, outcome0) = dram.access(Cycle::new(1000), 0, false);
        assert_eq!(outcome0, RowBufferOutcome::Empty);
        let empty_latency = t0 - Cycle::new(1000);

        // Hit the same row after the bank has quiesced.
        let later = t0 + Cycles::new(1000);
        let (t1, outcome1) = dram.access(later, 64, false);
        assert_eq!(outcome1, RowBufferOutcome::Hit);
        let hit_latency = t1 - later;

        // Conflict: same bank (stride banks×row_bytes), different row.
        let stride = u64::from(cfg.banks) * cfg.row_bytes;
        let later2 = t1 + Cycles::new(1000);
        let (t2, outcome2) = dram.access(later2, stride, false);
        assert_eq!(outcome2, RowBufferOutcome::Conflict);
        let conflict_latency = t2 - later2;

        assert!(hit_latency < empty_latency);
        assert!(empty_latency < conflict_latency);
        // Exact decomposition:
        let fixed = cfg.t_burst + cfg.controller_overhead;
        assert_eq!(hit_latency, cfg.t_cas + fixed);
        assert_eq!(empty_latency, cfg.t_rcd + cfg.t_cas + fixed);
        assert_eq!(conflict_latency, cfg.t_rp + cfg.t_rcd + cfg.t_cas + fixed);
    }

    #[test]
    fn different_banks_overlap() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        // Two rows in different banks, issued at the same instant: array
        // access overlaps; only the burst serializes.
        let t = Cycle::new(1000);
        let (done0, _) = dram.access(t, 0, false);
        let (done1, _) = dram.access(t, cfg.row_bytes, false);
        let serial_estimate = done0 + (done0 - t);
        assert!(
            done1 < serial_estimate,
            "bank parallelism should beat serial: {done1} vs {serial_estimate}"
        );
        // But bursts can't overlap:
        assert!(done1 >= done0 + cfg.t_burst);
    }

    #[test]
    fn same_bank_serializes() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        let t = Cycle::new(1000);
        let stride = u64::from(cfg.banks) * cfg.row_bytes; // same bank, new row
        let (done0, _) = dram.access(t, 0, false);
        let (done1, _) = dram.access(t, stride, false);
        // Second access can't start its activate until the first burst ends.
        assert!(done1 > done0);
        let second_latency = done1 - t;
        let unloaded = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst + cfg.controller_overhead;
        assert!(second_latency > unloaded, "queueing must be visible");
    }

    #[test]
    fn refresh_window_blocks() {
        let cfg = DramConfig {
            refresh_interval: Cycles::new(1000),
            refresh_duration: Cycles::new(100),
            ..DramConfig::ddr3_1333()
        };
        let mut dram = Dram::new(cfg);
        // Arrive mid-refresh (cycle 2050 is inside [2000, 2100)).
        let (done, _) = dram.access(Cycle::new(2050), 0, false);
        let (baseline_done, _) = {
            let mut fresh = Dram::new(cfg);
            fresh.access(Cycle::new(2100), 0, false)
        };
        assert_eq!(done, baseline_done, "access is pushed to window end");
        assert_eq!(dram.stats().refresh_stalls, 1);
    }

    #[test]
    fn stats_accounting() {
        let mut dram = Dram::new(no_refresh());
        dram.access(Cycle::new(0), 0, false);
        dram.access(Cycle::new(500), 64, true);
        let stats = *dram.stats();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.accesses(), 2);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.activates, 1);
        assert!((stats.row_hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("2 acc"));
    }

    #[test]
    fn latency_scaling() {
        let base = DramConfig::ddr3_1333();
        let doubled = base.with_latency_scaled(2.0);
        assert_eq!(doubled.t_cas, base.t_cas * 2);
        assert_eq!(doubled.t_rcd, base.t_rcd * 2);
        assert_eq!(doubled.t_rp, base.t_rp * 2);
        assert_eq!(doubled.t_burst, base.t_burst, "burst width unchanged");
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn rejects_nonpositive_scale() {
        let _ = DramConfig::ddr3_1333().with_latency_scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "refresh duration")]
    fn rejects_refresh_longer_than_interval() {
        let cfg = DramConfig {
            refresh_interval: Cycles::new(10),
            refresh_duration: Cycles::new(20),
            ..DramConfig::ddr3_1333()
        };
        let _ = Dram::new(cfg);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut dram = Dram::new(no_refresh());
        dram.access(Cycle::new(0), 0, false);
        dram.reset();
        assert_eq!(dram.stats().accesses(), 0);
        let (_, outcome) = dram.access(Cycle::new(0), 64, false);
        assert_eq!(outcome, RowBufferOutcome::Empty);
    }

    #[test]
    fn closed_page_trades_hits_for_conflicts() {
        let open_cfg = no_refresh();
        let closed_cfg = no_refresh().with_page_policy(PagePolicy::Closed);

        // Same-row re-access: open page hits, closed page re-activates.
        let same_row = |cfg: DramConfig| {
            let mut dram = Dram::new(cfg);
            let (t0, _) = dram.access(Cycle::new(0), 0, false);
            let later = t0 + Cycles::new(1_000);
            let (t1, outcome) = dram.access(later, 64, false);
            (t1 - later, outcome)
        };
        let (open_latency, open_outcome) = same_row(open_cfg);
        let (closed_latency, closed_outcome) = same_row(closed_cfg);
        assert_eq!(open_outcome, RowBufferOutcome::Hit);
        assert_eq!(closed_outcome, RowBufferOutcome::Empty);
        assert!(open_latency < closed_latency);

        // Different-row re-access in the same bank: closed page skips the
        // precharge and is faster.
        let conflict = |cfg: DramConfig| {
            let stride = u64::from(cfg.banks) * cfg.row_bytes;
            let mut dram = Dram::new(cfg);
            let (t0, _) = dram.access(Cycle::new(0), 0, false);
            let later = t0 + Cycles::new(1_000);
            let (t1, outcome) = dram.access(later, stride, false);
            (t1 - later, outcome)
        };
        let (open_conflict, open_out) = conflict(open_cfg);
        let (closed_conflict, closed_out) = conflict(closed_cfg);
        assert_eq!(open_out, RowBufferOutcome::Conflict);
        assert_eq!(closed_out, RowBufferOutcome::Empty);
        assert!(closed_conflict < open_conflict);
    }

    #[test]
    fn fault_spikes_slow_accesses_and_are_deterministic() {
        let faults = DramFaultConfig {
            spike_prob: 1.0, // every window spikes
            spike_cycles: Cycles::new(500),
            window_cycles: 1_000,
            seed: 3,
        };
        let (clean_done, _) = Dram::new(no_refresh()).access(Cycle::new(0), 0, false);
        let run_faulty = || {
            let mut dram = Dram::with_faults(no_refresh(), faults);
            let (done, _) = dram.access(Cycle::new(0), 0, false);
            (done, dram.stats().fault_spikes)
        };
        let (faulty_done, spikes) = run_faulty();
        assert_eq!(faulty_done, clean_done + Cycles::new(500));
        assert_eq!(spikes, 1);
        // Bit-identical on replay.
        assert_eq!(run_faulty(), (faulty_done, spikes));
    }

    #[test]
    #[should_panic(expected = "spike probability")]
    fn rejects_invalid_fault_probability() {
        let faults = DramFaultConfig {
            spike_prob: -0.5,
            spike_cycles: Cycles::new(1),
            window_cycles: 1_000,
            seed: 0,
        };
        let _ = Dram::with_faults(DramConfig::ddr3_1333(), faults);
    }

    #[test]
    fn completion_is_monotone_in_arrival() {
        let mut a = Dram::new(no_refresh());
        let mut b = Dram::new(no_refresh());
        let (done_early, _) = a.access(Cycle::new(100), 0, false);
        let (done_late, _) = b.access(Cycle::new(200), 0, false);
        assert!(done_late > done_early);
    }
}
