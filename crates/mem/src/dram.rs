//! Banked DRAM with row-buffer state, bus serialization and refresh.
//!
//! All timing parameters are expressed in **core cycles** — the hierarchy's
//! single clock domain. The defaults approximate a DDR3-1333 part behind a
//! 2 GHz core: a row-buffer hit costs ~75 core cycles end to end, a row
//! conflict ~190, matching the 40–120 ns window the original evaluation's
//! stalls fall into. Making DRAM time explicit in core cycles keeps the
//! entire gating analysis in one unit system ([`mapg_units::Cycles`]).
//!
//! # Hot-path layout
//!
//! Per-bank state is flattened into two contiguous arrays (`open_rows`,
//! `bank_free`) instead of a `Vec<Bank>` of structs, and the row-buffer
//! decision is branchless: the open row is encoded as `row_id + 1` with
//! `0` meaning *precharged*, so `(was_open << 1) | same_row` indexes a
//! four-entry latency/outcome table instead of matching on an
//! `Option<u64>`. The access stream hits effectively random banks, so the
//! `Hit`/`Conflict`/`Empty` branch was unpredictable; a table select is
//! not. See DESIGN.md §12 for the invariants.

use mapg_units::{Cycle, Cycles};

use crate::error::ConfigError;
use crate::faults::DramFaultConfig;

use core::fmt;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Keep the row open after an access (bets on row-buffer locality;
    /// the default, matching the evaluation's workloads).
    #[default]
    Open,
    /// Auto-precharge after every access (bets against locality: every
    /// access pays an activate, no access ever pays a precharge).
    Closed,
}

/// DRAM timing and geometry configuration (all times in core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independently schedulable banks.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Activate (row open) latency, tRCD.
    pub t_rcd: Cycles,
    /// Column access latency, tCAS.
    pub t_cas: Cycles,
    /// Precharge (row close) latency, tRP.
    pub t_rp: Cycles,
    /// Data-burst occupancy of the shared channel per access.
    pub t_burst: Cycles,
    /// Fixed controller + interconnect overhead added to every access.
    pub controller_overhead: Cycles,
    /// Refresh interval, tREFI (0 disables refresh).
    pub refresh_interval: Cycles,
    /// Refresh duration, tRFC.
    pub refresh_duration: Cycles,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// DDR3-1333-class part behind a 2 GHz core.
    pub fn ddr3_1333() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 8 << 10,
            t_rcd: Cycles::new(27),
            t_cas: Cycles::new(27),
            t_rp: Cycles::new(27),
            t_burst: Cycles::new(10),
            controller_overhead: Cycles::new(38),
            refresh_interval: Cycles::new(15_600),
            refresh_duration: Cycles::new(320),
            page_policy: PagePolicy::Open,
        }
    }

    /// Returns a copy using a different page policy.
    pub fn with_page_policy(mut self, page_policy: PagePolicy) -> Self {
        self.page_policy = page_policy;
        self
    }

    /// Returns a copy with the *latency* parameters — tRCD, tCAS, tRP and
    /// the fixed controller/interconnect overhead — scaled by `factor`;
    /// this is the "memory wall" sensitivity knob of experiment R-F6.
    ///
    /// Everything on an access's critical path except the data burst
    /// scales together: R-F6 models a uniformly slower (or faster) memory
    /// subsystem, and the controller/interconnect legs slow down with it.
    /// Only `t_burst` is pinned — it models channel *occupancy* (burst
    /// length over bus clock), which latency scaling does not change.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_latency_scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "latency factor must be positive, got {factor}"
        );
        let mut scaled = *self;
        scaled.t_rcd = self.t_rcd.scale(factor);
        scaled.t_cas = self.t_cas.scale(factor);
        scaled.t_rp = self.t_rp.scale(factor);
        scaled.controller_overhead = self.controller_overhead.scale(factor);
        scaled
    }

    /// Checks internal consistency; the error's message is the same text
    /// the panicking constructors abort with.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::ZeroBanks);
        }
        if self.row_bytes < 64 {
            return Err(ConfigError::RowTooSmall {
                row_bytes: self.row_bytes,
            });
        }
        if self.refresh_interval.raw() > 0 && self.refresh_duration >= self.refresh_interval {
            return Err(ConfigError::RefreshTooLong);
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1333()
    }
}

/// How the row buffer treated an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open: column access only.
    Hit,
    /// A different row was open: precharge + activate + column access.
    Conflict,
    /// The bank had no open row: activate + column access.
    Empty,
}

/// Running DRAM activity counters (feed the DRAM energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses served.
    pub reads: u64,
    /// Write accesses served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row activations performed (conflicts + empty-bank opens).
    pub activates: u64,
    /// Accesses delayed by a refresh window.
    pub refresh_stalls: u64,
    /// Total cycles the data bus was occupied.
    pub bus_busy_cycles: u64,
    /// Accesses slowed by an injected latency-spike fault.
    pub fault_spikes: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses() as f64
        }
    }

    /// Folds another channel's counters into this one (commutative; used
    /// to aggregate per-channel hierarchies into one cluster-wide view).
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.activates += other.activates;
        self.refresh_stalls += other.refresh_stalls;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.fault_spikes += other.fault_spikes;
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc ({} rd/{} wr), {:.1}% row hit, {} act",
            self.accesses(),
            self.reads,
            self.writes,
            self.row_hit_rate() * 100.0,
            self.activates
        )
    }
}

/// Row-buffer outcome by `(was_open << 1) | same_row`. Index `0b01`
/// (closed bank, matching row) is unreachable because the open-row tag is
/// `row_id + 1 != 0`; it is filled with `Empty` to keep the table total.
const OUTCOMES: [RowBufferOutcome; 4] = [
    RowBufferOutcome::Empty,
    RowBufferOutcome::Empty,
    RowBufferOutcome::Conflict,
    RowBufferOutcome::Hit,
];

/// The DRAM device + controller model.
///
/// ```
/// use mapg_mem::{Dram, DramConfig, RowBufferOutcome};
/// use mapg_units::Cycle;
///
/// let mut dram = Dram::new(DramConfig::ddr3_1333());
/// let (done_a, first) = dram.access(Cycle::new(0), 0x0000, false);
/// let (done_b, second) = dram.access(done_a, 0x0040, false);
/// assert_eq!(first, RowBufferOutcome::Empty);
/// assert_eq!(second, RowBufferOutcome::Hit); // same row, still open
/// assert!(done_b > done_a);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    faults: DramFaultConfig,
    /// `!faults.is_nop()`, hoisted out of the per-access path.
    faults_armed: bool,
    /// Open-row tag per bank: `row_id + 1`, `0` = precharged. Contiguous
    /// with `bank_free` so one access touches two small dense arrays.
    open_rows: Vec<u64>,
    /// Cycle at which each bank is next free (raw), parallel to
    /// `open_rows`.
    bank_free: Vec<u64>,
    bus_free: Cycle,
    /// Start of the refresh window the last access fell in (a multiple of
    /// `refresh_interval`). Pure cache: [`Dram::apply_refresh`] re-derives
    /// it with a division whenever a query lands outside
    /// `[refresh_window, refresh_window + interval)`, so in-window
    /// queries — the overwhelmingly common case, since global time moves
    /// a few cycles per access while tREFI is thousands — replace the
    /// per-access hardware divide with a subtract and compare.
    refresh_window: u64,
    /// Array latency (raw cycles) by `(was_open << 1) | same_row`; see
    /// [`OUTCOMES`] for the index encoding.
    latency_by_state: [u64; 4],
    /// `row_id + 1` under [`PagePolicy::Open`], `0` (auto-precharge)
    /// under [`PagePolicy::Closed`] — applied by masking, no branch.
    open_mask: u64,
    /// `row_bytes.trailing_zeros()` when the row size is a power of two:
    /// `addr >> row_shift` replaces a 64-bit division per access.
    row_shift: u32,
    row_pow2: bool,
    /// `banks - 1` / `banks.trailing_zeros()` when the bank count is a
    /// power of two: mask-and-shift replaces the `%` / `/` pair.
    bank_mask: u64,
    bank_shift: u32,
    bank_pow2: bool,
    stats: DramStats,
    obs: mapg_obs::ObsHandle,
}

impl Dram {
    /// Creates the device with all banks precharged and no fault injection.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero banks, row smaller
    /// than a line, refresh duration ≥ interval).
    pub fn new(config: DramConfig) -> Self {
        Dram::with_faults(config, DramFaultConfig::none())
    }

    /// Creates the device with deterministic latency-fault injection (see
    /// [`DramFaultConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if either configuration is inconsistent.
    pub fn with_faults(config: DramConfig, faults: DramFaultConfig) -> Self {
        match Dram::try_with_faults(config, faults) {
            Ok(dram) => dram,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Dram::new`].
    pub fn try_new(config: DramConfig) -> Result<Self, ConfigError> {
        Dram::try_with_faults(config, DramFaultConfig::none())
    }

    /// Fallible [`Dram::with_faults`]: configuration inconsistencies come
    /// back as [`ConfigError`] values instead of panics.
    pub fn try_with_faults(
        config: DramConfig,
        faults: DramFaultConfig,
    ) -> Result<Self, ConfigError> {
        config.try_validate()?;
        faults.validate().map_err(ConfigError::Fault)?;
        let bank_count = u64::from(config.banks);
        let hit = config.t_cas.raw();
        let empty = (config.t_rcd + config.t_cas).raw();
        let conflict = (config.t_rp + config.t_rcd + config.t_cas).raw();
        Ok(Dram {
            open_rows: vec![0; config.banks as usize],
            bank_free: vec![0; config.banks as usize],
            bus_free: Cycle::ZERO,
            refresh_window: 0,
            latency_by_state: [empty, empty, conflict, hit],
            open_mask: match config.page_policy {
                PagePolicy::Open => u64::MAX,
                PagePolicy::Closed => 0,
            },
            row_shift: config.row_bytes.trailing_zeros(),
            row_pow2: config.row_bytes.is_power_of_two(),
            bank_mask: bank_count - 1,
            bank_shift: bank_count.trailing_zeros(),
            bank_pow2: bank_count.is_power_of_two(),
            stats: DramStats::default(),
            faults_armed: !faults.is_nop(),
            faults,
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        })
    }

    /// The row address containing byte address `addr`.
    #[inline]
    fn row_of(&self, addr: u64) -> u64 {
        if self.row_pow2 {
            addr >> self.row_shift
        } else {
            addr / self.config.row_bytes
        }
    }

    /// Splits a row address into `(bank_index, row_id)`. For power-of-two
    /// bank counts the mask/shift pair is bit-identical to `%` / `/`.
    #[inline]
    fn split(&self, row: u64) -> (usize, u64) {
        if self.bank_pow2 {
            ((row & self.bank_mask) as usize, row >> self.bank_shift)
        } else {
            let bank_count = self.open_rows.len() as u64;
            ((row % bank_count) as usize, row / bank_count)
        }
    }

    /// Attaches an observability handle; access counters and injected
    /// latency-spike events (per-bank scope) flow through it.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.obs = obs;
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Serves one line access arriving at the controller at `now`; returns
    /// the completion timestamp and the row-buffer outcome.
    #[inline(always)]
    pub fn access(&mut self, now: Cycle, addr: u64, is_write: bool) -> (Cycle, RowBufferOutcome) {
        let (bank_index, row_id) = self.split(self.row_of(addr));
        let tag = row_id + 1;

        // The command can issue once the bank is free...
        let mut start = now.max(Cycle::new(self.bank_free[bank_index]));
        // ...and outside any refresh window.
        start = self.apply_refresh(start);

        // Branchless row-buffer resolution: the open-row tag (row_id + 1,
        // 0 = precharged) turns the three-way Hit/Conflict/Empty decision
        // into a table index. Bank targets are effectively random, so the
        // former `match` mispredicted; the select does not.
        let open = self.open_rows[bank_index];
        let state = (((open != 0) as usize) << 1) | ((open == tag) as usize);
        let mut array_latency = Cycles::new(self.latency_by_state[state]);
        let outcome = OUTCOMES[state];
        let hit = (state == 0b11) as u64;
        self.stats.row_hits += hit;
        self.stats.activates += 1 - hit;

        // Injected fault: a spiking (bank, window) pair slows the array
        // access. The decision is a pure hash of (seed, bank, window), so
        // it is independent of access order (see `DramFaultConfig`).
        if self.faults_armed && self.faults.spikes(bank_index, start.raw()) {
            array_latency += self.faults.spike_cycles;
            self.stats.fault_spikes += 1;
            self.obs.emit(
                start.raw(),
                mapg_obs::Scope::Bank(bank_index as u32),
                mapg_obs::EventKind::FaultInjected(mapg_obs::FaultKind::DramSpike),
            );
            self.obs.count("dram_fault_spikes", 1);
        }
        self.obs.count("dram_accesses", 1);

        // Data leaves the array, then must win the shared channel.
        let data_ready = start + array_latency;
        let burst_start = data_ready.max(self.bus_free);
        let burst_end = burst_start + self.config.t_burst;
        self.bus_free = burst_end;
        self.stats.bus_busy_cycles += self.config.t_burst.raw();

        let completion = burst_end + self.config.controller_overhead;
        self.bank_free[bank_index] = burst_end.raw();
        // Open policy keeps the row open (tag), closed auto-precharges
        // (0); `open_mask` folds the policy into a mask at build time.
        self.open_rows[bank_index] = tag & self.open_mask;

        self.stats.writes += is_write as u64;
        self.stats.reads += !is_write as u64;
        (completion, outcome)
    }

    /// Serves a *low-priority* access (a prefetch) only if the target bank
    /// and the channel are idle at `now`; returns `None` — without touching
    /// any state — when the access would have to queue behind other work.
    ///
    /// This approximates demand-priority scheduling in the incremental
    /// timing model: real controllers deprioritize or drop prefetches under
    /// load, and an analytic bank-free-time model cannot reorder a queue
    /// after the fact, so contended prefetches are dropped instead.
    pub fn try_access_idle(
        &mut self,
        now: Cycle,
        addr: u64,
        is_write: bool,
    ) -> Option<(Cycle, RowBufferOutcome)> {
        self.try_access_within(now, Cycles::ZERO, addr, is_write)
    }

    /// Like [`Dram::try_access_idle`] but tolerates the target resources
    /// becoming free within `slack` cycles — a bounded queue depth for
    /// low-priority traffic. Larger slack raises prefetch coverage at the
    /// cost of (bounded) extra queueing for demand accesses that arrive
    /// just behind the prefetch.
    pub fn try_access_within(
        &mut self,
        now: Cycle,
        slack: Cycles,
        addr: u64,
        is_write: bool,
    ) -> Option<(Cycle, RowBufferOutcome)> {
        let (bank_index, _) = self.split(self.row_of(addr));
        let deadline = (now + slack).raw();
        if self.bank_free[bank_index] > deadline || self.bus_free.raw() > deadline {
            return None;
        }
        Some(self.access(now, addr, is_write))
    }

    /// If `start` falls inside a refresh window, pushes it to the window's
    /// end and counts the stall.
    fn apply_refresh(&mut self, start: Cycle) -> Cycle {
        let interval = self.config.refresh_interval.raw();
        if interval == 0 {
            return start;
        }
        let s = start.raw();
        // `offset = s % interval`, but the divide only runs on a window
        // crossing (see the `refresh_window` field doc); the cached base
        // keeps the result bit-exact for arbitrary timestamps.
        if s < self.refresh_window || s - self.refresh_window >= interval {
            self.refresh_window = s - s % interval;
        }
        let offset = s - self.refresh_window;
        if offset < self.config.refresh_duration.raw() {
            self.stats.refresh_stalls += 1;
            let pushed = s - offset + self.config.refresh_duration.raw();
            Cycle::new(pushed)
        } else {
            start
        }
    }

    /// Precharges all banks and clears statistics.
    pub fn reset(&mut self) {
        self.open_rows.fill(0);
        self.bank_free.fill(0);
        self.bus_free = Cycle::ZERO;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_refresh() -> DramConfig {
        DramConfig {
            refresh_interval: Cycles::ZERO,
            ..DramConfig::ddr3_1333()
        }
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        // Open row 0 of bank 0.
        let (t0, outcome0) = dram.access(Cycle::new(1000), 0, false);
        assert_eq!(outcome0, RowBufferOutcome::Empty);
        let empty_latency = t0 - Cycle::new(1000);

        // Hit the same row after the bank has quiesced.
        let later = t0 + Cycles::new(1000);
        let (t1, outcome1) = dram.access(later, 64, false);
        assert_eq!(outcome1, RowBufferOutcome::Hit);
        let hit_latency = t1 - later;

        // Conflict: same bank (stride banks×row_bytes), different row.
        let stride = u64::from(cfg.banks) * cfg.row_bytes;
        let later2 = t1 + Cycles::new(1000);
        let (t2, outcome2) = dram.access(later2, stride, false);
        assert_eq!(outcome2, RowBufferOutcome::Conflict);
        let conflict_latency = t2 - later2;

        assert!(hit_latency < empty_latency);
        assert!(empty_latency < conflict_latency);
        // Exact decomposition:
        let fixed = cfg.t_burst + cfg.controller_overhead;
        assert_eq!(hit_latency, cfg.t_cas + fixed);
        assert_eq!(empty_latency, cfg.t_rcd + cfg.t_cas + fixed);
        assert_eq!(conflict_latency, cfg.t_rp + cfg.t_rcd + cfg.t_cas + fixed);
    }

    #[test]
    fn different_banks_overlap() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        // Two rows in different banks, issued at the same instant: array
        // access overlaps; only the burst serializes.
        let t = Cycle::new(1000);
        let (done0, _) = dram.access(t, 0, false);
        let (done1, _) = dram.access(t, cfg.row_bytes, false);
        let serial_estimate = done0 + (done0 - t);
        assert!(
            done1 < serial_estimate,
            "bank parallelism should beat serial: {done1} vs {serial_estimate}"
        );
        // But bursts can't overlap:
        assert!(done1 >= done0 + cfg.t_burst);
    }

    #[test]
    fn same_bank_serializes() {
        let cfg = no_refresh();
        let mut dram = Dram::new(cfg);
        let t = Cycle::new(1000);
        let stride = u64::from(cfg.banks) * cfg.row_bytes; // same bank, new row
        let (done0, _) = dram.access(t, 0, false);
        let (done1, _) = dram.access(t, stride, false);
        // Second access can't start its activate until the first burst ends.
        assert!(done1 > done0);
        let second_latency = done1 - t;
        let unloaded = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst + cfg.controller_overhead;
        assert!(second_latency > unloaded, "queueing must be visible");
    }

    #[test]
    fn refresh_window_blocks() {
        let cfg = DramConfig {
            refresh_interval: Cycles::new(1000),
            refresh_duration: Cycles::new(100),
            ..DramConfig::ddr3_1333()
        };
        let mut dram = Dram::new(cfg);
        // Arrive mid-refresh (cycle 2050 is inside [2000, 2100)).
        let (done, _) = dram.access(Cycle::new(2050), 0, false);
        let (baseline_done, _) = {
            let mut fresh = Dram::new(cfg);
            fresh.access(Cycle::new(2100), 0, false)
        };
        assert_eq!(done, baseline_done, "access is pushed to window end");
        assert_eq!(dram.stats().refresh_stalls, 1);
    }

    #[test]
    fn stats_accounting() {
        let mut dram = Dram::new(no_refresh());
        dram.access(Cycle::new(0), 0, false);
        dram.access(Cycle::new(500), 64, true);
        let stats = *dram.stats();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.accesses(), 2);
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.activates, 1);
        assert!((stats.row_hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("2 acc"));
    }

    #[test]
    fn latency_scaling() {
        let base = DramConfig::ddr3_1333();
        let doubled = base.with_latency_scaled(2.0);
        assert_eq!(doubled.t_cas, base.t_cas * 2);
        assert_eq!(doubled.t_rcd, base.t_rcd * 2);
        assert_eq!(doubled.t_rp, base.t_rp * 2);
        assert_eq!(doubled.t_burst, base.t_burst, "burst width unchanged");
    }

    #[test]
    fn latency_scaling_includes_controller_overhead() {
        // R-F6 semantics, pinned: the memory-wall knob scales the whole
        // non-burst critical path — array timings *and* the fixed
        // controller/interconnect overhead — so a 2× "slower memory"
        // config really does double the unloaded miss latency (minus the
        // burst, which models channel occupancy, not latency).
        let base = DramConfig::ddr3_1333();
        let doubled = base.with_latency_scaled(2.0);
        assert_eq!(doubled.controller_overhead, base.controller_overhead * 2);

        let unloaded = |cfg: DramConfig| {
            let mut dram = Dram::new(DramConfig {
                refresh_interval: Cycles::ZERO,
                ..cfg
            });
            let (done, _) = dram.access(Cycle::new(0), 0, false);
            done - Cycle::new(0)
        };
        assert_eq!(
            unloaded(doubled),
            (unloaded(base) - base.t_burst) * 2 + base.t_burst,
            "everything but the burst doubles"
        );
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn rejects_nonpositive_scale() {
        let _ = DramConfig::ddr3_1333().with_latency_scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "refresh duration")]
    fn rejects_refresh_longer_than_interval() {
        let cfg = DramConfig {
            refresh_interval: Cycles::new(10),
            refresh_duration: Cycles::new(20),
            ..DramConfig::ddr3_1333()
        };
        let _ = Dram::new(cfg);
    }

    #[test]
    fn try_validate_reports_errors_as_values() {
        let zero_banks = DramConfig {
            banks: 0,
            ..DramConfig::ddr3_1333()
        };
        assert_eq!(zero_banks.try_validate(), Err(ConfigError::ZeroBanks));
        let tiny_row = DramConfig {
            row_bytes: 32,
            ..DramConfig::ddr3_1333()
        };
        assert_eq!(
            tiny_row.try_validate(),
            Err(ConfigError::RowTooSmall { row_bytes: 32 })
        );
        let bad_refresh = DramConfig {
            refresh_interval: Cycles::new(10),
            refresh_duration: Cycles::new(20),
            ..DramConfig::ddr3_1333()
        };
        assert_eq!(bad_refresh.try_validate(), Err(ConfigError::RefreshTooLong));
        assert!(DramConfig::ddr3_1333().try_validate().is_ok());
        assert!(Dram::try_new(zero_banks).is_err());
        let bad_faults = DramFaultConfig {
            spike_prob: 2.0,
            ..DramFaultConfig::none()
        };
        assert!(matches!(
            Dram::try_with_faults(DramConfig::ddr3_1333(), bad_faults),
            Err(ConfigError::Fault(_))
        ));
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut dram = Dram::new(no_refresh());
        dram.access(Cycle::new(0), 0, false);
        dram.reset();
        assert_eq!(dram.stats().accesses(), 0);
        let (_, outcome) = dram.access(Cycle::new(0), 64, false);
        assert_eq!(outcome, RowBufferOutcome::Empty);
    }

    #[test]
    fn closed_page_trades_hits_for_conflicts() {
        let open_cfg = no_refresh();
        let closed_cfg = no_refresh().with_page_policy(PagePolicy::Closed);

        // Same-row re-access: open page hits, closed page re-activates.
        let same_row = |cfg: DramConfig| {
            let mut dram = Dram::new(cfg);
            let (t0, _) = dram.access(Cycle::new(0), 0, false);
            let later = t0 + Cycles::new(1_000);
            let (t1, outcome) = dram.access(later, 64, false);
            (t1 - later, outcome)
        };
        let (open_latency, open_outcome) = same_row(open_cfg);
        let (closed_latency, closed_outcome) = same_row(closed_cfg);
        assert_eq!(open_outcome, RowBufferOutcome::Hit);
        assert_eq!(closed_outcome, RowBufferOutcome::Empty);
        assert!(open_latency < closed_latency);

        // Different-row re-access in the same bank: closed page skips the
        // precharge and is faster.
        let conflict = |cfg: DramConfig| {
            let stride = u64::from(cfg.banks) * cfg.row_bytes;
            let mut dram = Dram::new(cfg);
            let (t0, _) = dram.access(Cycle::new(0), 0, false);
            let later = t0 + Cycles::new(1_000);
            let (t1, outcome) = dram.access(later, stride, false);
            (t1 - later, outcome)
        };
        let (open_conflict, open_out) = conflict(open_cfg);
        let (closed_conflict, closed_out) = conflict(closed_cfg);
        assert_eq!(open_out, RowBufferOutcome::Conflict);
        assert_eq!(closed_out, RowBufferOutcome::Empty);
        assert!(closed_conflict < open_conflict);
    }

    #[test]
    fn fault_spikes_slow_accesses_and_are_deterministic() {
        let faults = DramFaultConfig {
            spike_prob: 1.0, // every window spikes
            spike_cycles: Cycles::new(500),
            window_cycles: 1_000,
            seed: 3,
        };
        let (clean_done, _) = Dram::new(no_refresh()).access(Cycle::new(0), 0, false);
        let run_faulty = || {
            let mut dram = Dram::with_faults(no_refresh(), faults);
            let (done, _) = dram.access(Cycle::new(0), 0, false);
            (done, dram.stats().fault_spikes)
        };
        let (faulty_done, spikes) = run_faulty();
        assert_eq!(faulty_done, clean_done + Cycles::new(500));
        assert_eq!(spikes, 1);
        // Bit-identical on replay.
        assert_eq!(run_faulty(), (faulty_done, spikes));
    }

    #[test]
    #[should_panic(expected = "spike probability")]
    fn rejects_invalid_fault_probability() {
        let faults = DramFaultConfig {
            spike_prob: -0.5,
            spike_cycles: Cycles::new(1),
            window_cycles: 1_000,
            seed: 0,
        };
        let _ = Dram::with_faults(DramConfig::ddr3_1333(), faults);
    }

    #[test]
    fn completion_is_monotone_in_arrival() {
        let mut a = Dram::new(no_refresh());
        let mut b = Dram::new(no_refresh());
        let (done_early, _) = a.access(Cycle::new(100), 0, false);
        let (done_late, _) = b.access(Cycle::new(200), 0, false);
        assert!(done_late > done_early);
    }

    #[test]
    fn non_pow2_banks_match_division_semantics() {
        // 3 banks exercises the division fallback in split(); row 0/1/2
        // land in banks 0/1/2 and row 3 wraps to bank 0 with row_id 1.
        let cfg = DramConfig {
            banks: 3,
            refresh_interval: Cycles::ZERO,
            ..DramConfig::ddr3_1333()
        };
        let mut dram = Dram::new(cfg);
        let (t0, first) = dram.access(Cycle::new(0), 0, false);
        assert_eq!(first, RowBufferOutcome::Empty);
        // Row 3 = same bank 0, different row: conflict.
        let later = t0 + Cycles::new(1_000);
        let (_, second) = dram.access(later, 3 * cfg.row_bytes, false);
        assert_eq!(second, RowBufferOutcome::Conflict);
    }
}
