//! Latency distribution bookkeeping.

use mapg_units::Cycles;

use core::fmt;

/// A power-of-two-bucketed histogram of cycle latencies.
///
/// Miss-latency *distributions* (not just means) drive gating decisions —
/// the break-even comparison happens per stall — so the hierarchy records
/// every DRAM-serviced latency here. Power-of-two buckets give ~1 bit of
/// relative precision, plenty for the "how much of the mass is above the
/// break-even time" questions the experiments ask.
///
/// ```
/// use mapg_mem::LatencyHistogram;
/// use mapg_units::Cycles;
///
/// let mut h = LatencyHistogram::new();
/// for latency in [100u64, 120, 200, 400] {
///     h.record(Cycles::new(latency));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), Cycles::new(205));
/// assert!(h.percentile(0.95) >= Cycles::new(256));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; `buckets[0]` counts
    /// zero-latency samples.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    const BUCKETS: usize = 33;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycles) {
        let raw = latency.raw();
        let index = if raw == 0 {
            0
        } else {
            (64 - raw.leading_zeros()) as usize
        };
        let index = index.min(Self::BUCKETS - 1);
        self.buckets[index] += 1;
        self.count += 1;
        self.sum += raw;
        self.min = self.min.min(raw);
        self.max = self.max.max(raw);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency (zero when empty).
    pub fn mean(&self) -> Cycles {
        Cycles::new(self.sum.checked_div(self.count).unwrap_or(0))
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Cycles {
        if self.count == 0 {
            Cycles::ZERO
        } else {
            Cycles::new(self.min)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Cycles {
        Cycles::new(self.max)
    }

    /// Approximate `q`-quantile (bucket upper bound containing the
    /// quantile). Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Cycles {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if index == 0 { 0 } else { 1u64 << index };
                return Cycles::new(upper.min(self.max));
            }
        }
        Cycles::new(self.max)
    }

    /// Fraction of samples strictly greater than `threshold`, computed
    /// exactly at bucket granularity (conservative: a bucket straddling the
    /// threshold counts as above only if its lower bound is above).
    pub fn fraction_above(&self, threshold: Cycles) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            let lower = if index == 0 { 0 } else { 1u64 << (index - 1) };
            if lower > threshold.raw() {
                above += n;
            }
        }
        above as f64 / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p95={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.95),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Cycles::ZERO);
        assert_eq!(h.min(), Cycles::ZERO);
        assert_eq!(h.max(), Cycles::ZERO);
        assert_eq!(h.percentile(0.5), Cycles::ZERO);
        assert_eq!(h.fraction_above(Cycles::new(10)), 0.0);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(Cycles::new(v));
        }
        assert_eq!(h.mean(), Cycles::new(20));
        assert_eq!(h.min(), Cycles::new(10));
        assert_eq!(h.max(), Cycles::new(30));
    }

    #[test]
    fn percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(Cycles::new(v));
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p100 = h.percentile(1.0);
        assert!(p50 <= p95);
        assert!(p95 <= p100);
        assert_eq!(p100, Cycles::new(1000));
    }

    #[test]
    fn fraction_above_counts_upper_buckets() {
        let mut h = LatencyHistogram::new();
        // 4 samples in [64,128), 4 in [1024, 2048).
        for _ in 0..4 {
            h.record(Cycles::new(100));
            h.record(Cycles::new(1500));
        }
        let fraction = h.fraction_above(Cycles::new(512));
        assert!((fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_goes_to_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(Cycles::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(1.0), Cycles::ZERO);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Cycles::new(10));
        b.record(Cycles::new(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Cycles::new(10));
        assert_eq!(a.max(), Cycles::new(1000));
        assert_eq!(a.mean(), Cycles::new(505));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        let _ = LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn display_is_informative() {
        let mut h = LatencyHistogram::new();
        h.record(Cycles::new(100));
        let text = h.to_string();
        assert!(text.contains("n=1"), "{text}");
    }
}
