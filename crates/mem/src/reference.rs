//! The retained "before" memory stack, kept verbatim as an executable
//! specification.
//!
//! [`ReferenceHierarchy`] is the memory model exactly as this workspace
//! shipped it before the hot-path overhaul: per-set `Vec<Vec<Way>>` cache
//! storage behind one pointer chase per probe, division-based index math in
//! the cache and the DRAM controller, and the original hierarchy walk. It
//! exists for two jobs:
//!
//! - **equivalence oracle** — the scheduler-equivalence suite runs whole
//!   clusters against this stack and demands bit-identical statistics, which
//!   pins every optimization in [`Cache`](crate::Cache) /
//!   [`Dram`](crate::Dram) / [`MemoryHierarchy`](crate::MemoryHierarchy) to
//!   the seed semantics;
//! - **throughput baseline** — the `bench-throughput` harness measures the
//!   optimized stack's simulated-cycles-per-second against this one, so the
//!   committed speedup is a true before/after comparison reproducible in one
//!   binary.
//!
//! Nothing here is exported for production use, and nothing here should be
//! optimized: its slowness *is* the baseline.

use mapg_trace::{AccessKind, MemAccess};
use mapg_units::{Cycle, Cycles};

use crate::cache::{CacheConfig, CacheOutcome, CacheStats, ReplacementPolicy};
use crate::dram::{DramConfig, DramStats, RowBufferOutcome};
use crate::faults::DramFaultConfig;
use crate::hierarchy::{AccessResponse, HierarchyConfig, HierarchyStats, ServiceLevel};
use crate::mshr::MshrOutcome;
use crate::prefetch::{PrefetchCandidates, StreamPrefetcher};
use crate::stats::LatencyHistogram;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    last_use: u64,
    filled_at: u64,
}

/// The seed cache: one heap allocation per set, division-based indexing.
#[derive(Debug, Clone)]
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    use_clock: u64,
    rng_state: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        RefCache {
            config,
            sets: vec![vec![Way::default(); config.associativity as usize]; sets as usize],
            stats: CacheStats::default(),
            use_clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.stats.accesses += 1;
        self.use_clock += 1;
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        let stamp = self.use_clock;

        let set = &mut self.sets[set_index];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = stamp;
            way.dirty |= is_write;
            let prefetched = way.prefetched;
            way.prefetched = false;
            self.stats.hits += 1;
            return CacheOutcome::Hit { prefetched };
        }

        let victim_index = Self::select_victim(set, self.config.replacement, &mut self.rng_state);
        let victim = &mut set[victim_index];
        let writeback = if victim.valid && victim.dirty {
            let victim_line = victim.tag * set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        *victim = Way {
            tag,
            valid: true,
            dirty: is_write,
            prefetched: false,
            last_use: stamp,
            filled_at: stamp,
        };
        CacheOutcome::Miss { writeback }
    }

    fn select_victim(set: &[Way], policy: ReplacementPolicy, rng_state: &mut u64) -> usize {
        if let Some(invalid) = set.iter().position(|w| !w.valid) {
            return invalid;
        }
        match policy {
            ReplacementPolicy::Lru => set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("sets are never empty"),
            ReplacementPolicy::Fifo => set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.filled_at)
                .map(|(i, _)| i)
                .expect("sets are never empty"),
            ReplacementPolicy::Random => {
                let mut x = *rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng_state = x;
                (x % set.len() as u64) as usize
            }
        }
    }

    fn fill_prefetch(&mut self, addr: u64) -> Option<u64> {
        self.use_clock += 1;
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        let stamp = self.use_clock;
        let set = &mut self.sets[set_index];
        if set.iter().any(|w| w.valid && w.tag == tag) {
            return None;
        }
        let victim_index = Self::select_victim(set, self.config.replacement, &mut self.rng_state);
        let victim = &mut set[victim_index];
        let writeback = if victim.valid && victim.dirty {
            let victim_line = victim.tag * set_count + set_index as u64;
            self.stats.writebacks += 1;
            Some(victim_line)
        } else {
            None
        };
        *victim = Way {
            tag,
            valid: true,
            dirty: false,
            prefetched: true,
            last_use: stamp,
            filled_at: stamp,
        };
        writeback
    }

    fn probe(&self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_index = (line % set_count) as usize;
        let tag = line / set_count;
        self.sets[set_index].iter().any(|w| w.valid && w.tag == tag)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    next_free: Cycle,
}

/// The seed DRAM controller: division/modulo bank and row decomposition on
/// every access.
#[derive(Debug, Clone)]
struct RefDram {
    config: DramConfig,
    faults: DramFaultConfig,
    banks: Vec<Bank>,
    bus_free: Cycle,
    stats: DramStats,
    obs: mapg_obs::ObsHandle,
}

impl RefDram {
    fn with_faults(config: DramConfig, faults: DramFaultConfig) -> Self {
        RefDram {
            banks: vec![Bank::default(); config.banks as usize],
            bus_free: Cycle::ZERO,
            stats: DramStats::default(),
            faults,
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        }
    }

    fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.obs = obs;
    }

    fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn access(&mut self, now: Cycle, addr: u64, is_write: bool) -> (Cycle, RowBufferOutcome) {
        let row = addr / self.config.row_bytes;
        let bank_count = self.banks.len() as u64;
        let bank_index = (row % bank_count) as usize;
        let row_id = row / bank_count;

        let mut start = now.max(self.banks[bank_index].next_free);
        start = self.apply_refresh(start);

        let (mut array_latency, outcome) = match self.banks[bank_index].open_row {
            Some(open) if open == row_id => {
                self.stats.row_hits += 1;
                (self.config.t_cas, RowBufferOutcome::Hit)
            }
            Some(_) => {
                self.stats.activates += 1;
                (
                    self.config.t_rp + self.config.t_rcd + self.config.t_cas,
                    RowBufferOutcome::Conflict,
                )
            }
            None => {
                self.stats.activates += 1;
                (
                    self.config.t_rcd + self.config.t_cas,
                    RowBufferOutcome::Empty,
                )
            }
        };

        if self.faults.spikes(bank_index, start.raw()) {
            array_latency += self.faults.spike_cycles;
            self.stats.fault_spikes += 1;
            self.obs.emit(
                start.raw(),
                mapg_obs::Scope::Bank(bank_index as u32),
                mapg_obs::EventKind::FaultInjected(mapg_obs::FaultKind::DramSpike),
            );
            self.obs.count("dram_fault_spikes", 1);
        }
        self.obs.count("dram_accesses", 1);

        let data_ready = start + array_latency;
        let burst_start = data_ready.max(self.bus_free);
        let burst_end = burst_start + self.config.t_burst;
        self.bus_free = burst_end;
        self.stats.bus_busy_cycles += self.config.t_burst.raw();

        let completion = burst_end + self.config.controller_overhead;
        let bank = &mut self.banks[bank_index];
        bank.next_free = burst_end;
        match self.config.page_policy {
            crate::dram::PagePolicy::Open => bank.open_row = Some(row_id),
            crate::dram::PagePolicy::Closed => {
                bank.open_row = None;
            }
        }

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        (completion, outcome)
    }

    fn try_access_within(
        &mut self,
        now: Cycle,
        slack: Cycles,
        addr: u64,
        is_write: bool,
    ) -> Option<(Cycle, RowBufferOutcome)> {
        let row = addr / self.config.row_bytes;
        let bank_count = self.banks.len() as u64;
        let bank_index = (row % bank_count) as usize;
        let deadline = now + slack;
        if self.banks[bank_index].next_free > deadline || self.bus_free > deadline {
            return None;
        }
        Some(self.access(now, addr, is_write))
    }

    fn apply_refresh(&mut self, start: Cycle) -> Cycle {
        let interval = self.config.refresh_interval.raw();
        if interval == 0 {
            return start;
        }
        let offset = start.raw() % interval;
        if offset < self.config.refresh_duration.raw() {
            self.stats.refresh_stalls += 1;
            let pushed = start.raw() - offset + self.config.refresh_duration.raw();
            Cycle::new(pushed)
        } else {
            start
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RefMshrEntry {
    line: u64,
    completion: Cycle,
}

/// The seed MSHR file: a `retain` sweep on every lookup, no early-out.
#[derive(Debug, Clone)]
struct RefMshr {
    capacity: usize,
    entries: Vec<RefMshrEntry>,
}

impl RefMshr {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        RefMshr {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn lookup(&mut self, now: Cycle, line: u64) -> MshrOutcome {
        self.entries.retain(|e| e.completion > now);
        if let Some(entry) = self.entries.iter().find(|e| e.line == line) {
            return MshrOutcome::Merged {
                completion: entry.completion,
            };
        }
        if self.entries.len() >= self.capacity {
            let free_at = self
                .entries
                .iter()
                .map(|e| e.completion)
                .min()
                .expect("full file is non-empty");
            return MshrOutcome::Full { free_at };
        }
        MshrOutcome::Allocated
    }

    fn commit(&mut self, line: u64, completion: Cycle) {
        assert!(
            self.entries.len() < self.capacity,
            "commit on a full MSHR file"
        );
        assert!(
            self.entries.iter().all(|e| e.line != line),
            "line {line:#x} already has an MSHR entry"
        );
        self.entries.push(RefMshrEntry { line, completion });
    }
}

/// The seed L1 → L2 → MSHR → DRAM hierarchy, frozen.
///
/// Construction mirrors [`MemoryHierarchy::new`](crate::MemoryHierarchy);
/// the access path, statistics and observability emissions are the seed
/// implementation verbatim, so a run against this hierarchy must produce
/// exactly the counters a run against the optimized one does.
#[derive(Debug, Clone)]
pub struct ReferenceHierarchy {
    config: HierarchyConfig,
    l1: RefCache,
    l2: RefCache,
    dram: RefDram,
    mshrs: RefMshr,
    prefetcher: StreamPrefetcher,
    pending_prefetches: Vec<(Cycle, u64)>,
    miss_latency: LatencyHistogram,
    mshr_stalls: u64,
    obs: mapg_obs::ObsHandle,
}

impl ReferenceHierarchy {
    /// Builds the frozen seed hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any component configuration is inconsistent, with the same
    /// messages as [`MemoryHierarchy::new`](crate::MemoryHierarchy::new).
    pub fn new(config: HierarchyConfig) -> Self {
        // Same up-front validation as the live stack (the frozen copies
        // skip re-checking).
        config.l1.sets();
        config.l2.sets();
        let _ = crate::Dram::with_faults(config.dram, config.dram_faults);
        ReferenceHierarchy {
            l1: RefCache::new(config.l1),
            l2: RefCache::new(config.l2),
            dram: RefDram::with_faults(config.dram, config.dram_faults),
            mshrs: RefMshr::new(config.mshr_entries),
            prefetcher: StreamPrefetcher::new(config.prefetch),
            pending_prefetches: Vec::new(),
            miss_latency: LatencyHistogram::new(),
            mshr_stalls: 0,
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle (same wiring as the live stack).
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.dram.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Serves one reference issued at `now` — the seed access path.
    pub fn access(&mut self, now: Cycle, access: &MemAccess) -> AccessResponse {
        self.drain_prefetches(now);
        let is_write = access.kind == AccessKind::Store;
        let l1_done = now + self.config.l1.hit_latency;
        match self.l1.access(access.addr, is_write) {
            CacheOutcome::Hit { .. } => {
                return AccessResponse {
                    completion: l1_done,
                    level: ServiceLevel::L1,
                    row: None,
                };
            }
            CacheOutcome::Miss { writeback } => {
                if let Some(victim_line) = writeback {
                    let victim_addr = victim_line * self.config.l1.line_bytes;
                    if let CacheOutcome::Miss {
                        writeback: Some(l2_victim),
                    } = self.l2.access(victim_addr, true)
                    {
                        let l2_victim_addr = l2_victim * self.config.l2.line_bytes;
                        let _ = self.dram.access(l1_done, l2_victim_addr, true);
                    }
                }
            }
        }

        let l2_done = l1_done + self.config.l2.hit_latency;
        match self.l2.access(access.addr, is_write) {
            CacheOutcome::Hit { prefetched } => {
                if prefetched {
                    let line = access.addr / self.config.l2.line_bytes;
                    let candidates = self.prefetcher.observe_prefetch_hit(line);
                    self.fetch_prefetch_candidates(candidates, l2_done);
                }
                AccessResponse {
                    completion: l2_done,
                    level: ServiceLevel::L2,
                    row: None,
                }
            }
            CacheOutcome::Miss { writeback } => {
                if let Some(victim_line) = writeback {
                    let victim_addr = victim_line * self.config.l2.line_bytes;
                    let _ = self.dram.access(l2_done, victim_addr, true);
                }
                self.dram_fill(now, l2_done, access)
            }
        }
    }

    fn dram_fill(&mut self, issued: Cycle, mut ready: Cycle, access: &MemAccess) -> AccessResponse {
        let line = access.addr / self.config.l2.line_bytes;
        let is_write = access.kind == AccessKind::Store;
        loop {
            match self.mshrs.lookup(ready, line) {
                MshrOutcome::Merged { completion } => {
                    return AccessResponse {
                        completion: completion.max(ready),
                        level: ServiceLevel::Dram,
                        row: None,
                    };
                }
                MshrOutcome::Full { free_at } => {
                    self.mshr_stalls += 1;
                    ready = free_at + Cycles::new(1);
                }
                MshrOutcome::Allocated => {
                    let (completion, row) = self.dram.access(ready, access.addr, is_write);
                    self.mshrs.commit(line, completion);
                    self.miss_latency
                        .record(completion.saturating_since(issued));
                    self.obs.count("llc_misses", 1);
                    self.obs
                        .observe("miss_latency", completion.saturating_since(issued).raw());
                    self.issue_prefetches(line, completion);
                    return AccessResponse {
                        completion,
                        level: ServiceLevel::Dram,
                        row: Some(row),
                    };
                }
            }
        }
    }

    fn issue_prefetches(&mut self, line: u64, after: Cycle) {
        let candidates = self.prefetcher.observe_miss(line);
        self.fetch_prefetch_candidates(candidates, after);
    }

    fn fetch_prefetch_candidates(&mut self, candidates: PrefetchCandidates, ready: Cycle) {
        const PENDING_CAP: usize = 32;
        // The seed collected candidates into a Vec; keep that allocation so
        // the reference's cost profile stays exactly the seed's (only the
        // shared prefetcher's return type changed).
        let candidates: Vec<u64> = candidates.into_iter().collect();
        for candidate in candidates {
            let addr = candidate * self.config.l2.line_bytes;
            if self.l2.probe(addr) {
                continue;
            }
            if self.pending_prefetches.len() >= PENDING_CAP {
                self.pending_prefetches.remove(0);
            }
            self.pending_prefetches.push((ready, addr));
        }
    }

    fn drain_prefetches(&mut self, now: Cycle) {
        if self.pending_prefetches.is_empty() {
            return;
        }
        let mut remaining = Vec::with_capacity(self.pending_prefetches.len());
        let pending = std::mem::take(&mut self.pending_prefetches);
        for (ready, addr) in pending {
            if ready > now {
                remaining.push((ready, addr));
                continue;
            }
            if self.l2.probe(addr) {
                continue;
            }
            let slack = Cycles::new(80);
            if self
                .dram
                .try_access_within(now, slack, addr, false)
                .is_none()
            {
                continue;
            }
            self.prefetcher.record_issued();
            if let Some(victim_line) = self.l2.fill_prefetch(addr) {
                let victim_addr = victim_line * self.config.l2.line_bytes;
                let _ = self.dram.access(now, victim_addr, true);
            }
        }
        self.pending_prefetches = remaining;
    }

    /// Snapshot of all statistics, in the same shape as the live stack's
    /// [`MemoryHierarchy::stats`](crate::MemoryHierarchy::stats).
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
            miss_latency: self.miss_latency.clone(),
            mshr_stalls: self.mshr_stalls,
            prefetch: *self.prefetcher.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryHierarchy;

    /// Deterministic pseudo-random access stream shared by the equivalence
    /// tests below.
    fn stream(seed: u64, n: usize) -> Vec<(u64, bool, bool)> {
        let mut x = seed | 1;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % (64 << 20)) & !7;
            let is_write = x.rotate_left(21).is_multiple_of(4);
            let dependent = x.rotate_left(42).is_multiple_of(8);
            out.push((addr, is_write, dependent));
        }
        out
    }

    fn mem_access(addr: u64, is_write: bool, dependent: bool) -> MemAccess {
        MemAccess {
            addr,
            pc: 0x400 + (addr % 64),
            kind: if is_write {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
            dependent,
        }
    }

    /// The live hierarchy must reproduce the frozen seed hierarchy response
    /// for response, timestamp for timestamp, and finish with identical
    /// statistics — over every hierarchy configuration knob we ship.
    #[test]
    fn live_hierarchy_matches_reference_exactly() {
        let configs = [
            HierarchyConfig::baseline(),
            HierarchyConfig::with_stream_prefetcher(),
            HierarchyConfig {
                mshr_entries: 2,
                ..HierarchyConfig::baseline()
            },
        ];
        for (ci, config) in configs.into_iter().enumerate() {
            let mut live = MemoryHierarchy::new(config);
            let mut reference = ReferenceHierarchy::new(config);
            let mut now = Cycle::ZERO;
            for (i, (addr, is_write, dependent)) in
                stream(0x5eed + ci as u64, 30_000).into_iter().enumerate()
            {
                let access = mem_access(addr, is_write, dependent);
                let a = live.access(now, &access);
                let b = reference.access(now, &access);
                assert_eq!(a, b, "config {ci}, access {i} @ {addr:#x}");
                // Advance time like a core would: sometimes wait for the
                // data, sometimes fire the next access quickly.
                now = if i % 3 == 0 {
                    a.completion
                } else {
                    now + Cycles::new(1 + (addr % 7))
                };
            }
            assert_eq!(live.stats(), reference.stats(), "config {ci}");
        }
    }

    /// Replacement-policy coverage: the frozen cache and the live cache agree
    /// on every outcome (hits, victims, writebacks) for every policy.
    #[test]
    fn live_cache_matches_reference_for_all_policies() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = CacheConfig {
                size_bytes: 4 << 10,
                associativity: 4,
                line_bytes: 64,
                hit_latency: Cycles::new(1),
                replacement: policy,
            };
            let mut live = crate::Cache::new(config);
            let mut reference = RefCache::new(config);
            for (i, (addr, is_write, _)) in stream(99, 20_000).into_iter().enumerate() {
                let a = live.access(addr % (1 << 16), is_write);
                let b = reference.access(addr % (1 << 16), is_write);
                assert_eq!(a, b, "{policy:?}, access {i}");
            }
            assert_eq!(live.stats(), reference.stats(), "{policy:?}");
        }
    }
}
