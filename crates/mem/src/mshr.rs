//! Miss-status holding registers.
//!
//! MSHRs bound how many distinct line misses can be outstanding at once —
//! the hardware limit on memory-level parallelism — and merge *secondary*
//! misses (another reference to a line that is already being fetched) into
//! the existing entry instead of issuing duplicate DRAM traffic.

use mapg_units::Cycle;

use crate::error::ConfigError;

/// Outcome of presenting a missing line to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the fetch.
    Allocated,
    /// The line is already in flight; this reference completes when the
    /// existing fetch does.
    Merged {
        /// Completion time of the in-flight fetch.
        completion: Cycle,
    },
    /// All entries are busy; the reference must stall until `free_at`, the
    /// earliest completion among current entries, then retry.
    Full {
        /// Earliest time an entry frees up.
        free_at: Cycle,
    },
}

/// A file of miss-status holding registers.
///
/// The file is stored line-keyed as two parallel arrays (`lines`,
/// `completions`) rather than an array of entry structs: `lookup` is a
/// scan over every in-flight line on the demand-miss path, and a
/// contiguous `u64` key array lets that scan vectorize instead of striding
/// over interleaved `(line, completion)` pairs.
///
/// ```
/// use mapg_mem::{MshrFile, MshrOutcome};
/// use mapg_units::Cycle;
///
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.lookup(Cycle::new(0), 7), MshrOutcome::Allocated);
/// mshrs.commit(7, Cycle::new(100));
/// // Same line again: merged into the in-flight fetch.
/// assert!(matches!(mshrs.lookup(Cycle::new(1), 7), MshrOutcome::Merged { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// In-flight line addresses; `completions[i]` pairs with `lines[i]`.
    lines: Vec<u64>,
    /// Completion timestamps, raw cycles, parallel to `lines`.
    completions: Vec<u64>,
    /// Earliest completion among the entries, `u64::MAX` when empty.
    ///
    /// This is an *exact* cache, not a hint: `commit` min-folds the new
    /// completion in and `retire` recomputes over the survivors, so every
    /// consumer (lazy retirement's early-out, the `Full` stall time,
    /// [`MshrFile::earliest_completion`]) reads one word instead of
    /// re-minimizing the file.
    earliest: Cycle,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a core with no MSHRs cannot miss at
    /// all, which is never the intent).
    pub fn new(capacity: usize) -> Self {
        match MshrFile::try_new(capacity) {
            Ok(file) => file,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`MshrFile::new`]: rejects a zero capacity as
    /// [`ConfigError::ZeroMshrs`] instead of panicking.
    pub fn try_new(capacity: usize) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::ZeroMshrs);
        }
        Ok(MshrFile {
            capacity,
            lines: Vec::with_capacity(capacity),
            completions: Vec::with_capacity(capacity),
            earliest: Cycle::new(u64::MAX),
        })
    }

    /// Number of entries currently in flight at time `now` (entries whose
    /// completion has passed are retired lazily by this call).
    pub fn in_flight(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.lines.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Presents a missing `line` at time `now`.
    ///
    /// If `Allocated` is returned the caller must follow up with
    /// [`MshrFile::commit`] once it knows the fetch's completion time.
    #[inline]
    pub fn lookup(&mut self, now: Cycle, line: u64) -> MshrOutcome {
        self.retire(now);
        // Branchless find: lines are unique, so the last match is the only
        // match, and the select compiles to a conditional move — an
        // early-exit `find` mispredicts on effectively random positions.
        let mut found = usize::MAX;
        for (i, &l) in self.lines.iter().enumerate() {
            found = if l == line { i } else { found };
        }
        if found != usize::MAX {
            return MshrOutcome::Merged {
                completion: Cycle::new(self.completions[found]),
            };
        }
        if self.lines.len() >= self.capacity {
            // `earliest` is exact whenever the file is non-empty (and a
            // full file is non-empty because new() rejects capacity == 0),
            // so the stall time is the cache — no re-minimization.
            return MshrOutcome::Full {
                free_at: self.earliest,
            };
        }
        MshrOutcome::Allocated
    }

    /// Records the completion time of a fetch previously `Allocated` for
    /// `line`.
    ///
    /// # Panics
    ///
    /// Panics if the file is already full or the line is already tracked —
    /// both indicate the caller skipped `lookup`.
    #[inline]
    pub fn commit(&mut self, line: u64, completion: Cycle) {
        assert!(
            self.lines.len() < self.capacity,
            "commit on a full MSHR file"
        );
        assert!(
            self.lines.iter().all(|&l| l != line),
            "line {line:#x} already has an MSHR entry"
        );
        self.lines.push(line);
        self.completions.push(completion.raw());
        self.earliest = self.earliest.min(completion);
    }

    /// Earliest completion among in-flight entries, if any (the maintained
    /// cache, not a scan).
    pub fn earliest_completion(&self) -> Option<Cycle> {
        if self.lines.is_empty() {
            None
        } else {
            Some(self.earliest)
        }
    }

    /// Latest completion among in-flight entries, if any.
    pub fn latest_completion(&self) -> Option<Cycle> {
        self.completions.iter().max().map(|&c| Cycle::new(c))
    }

    /// Drops entries whose fetch completed at or before `now`.
    ///
    /// Entry order is irrelevant (`lookup` keys on the unique line and the
    /// full-file path reads the cached minimum), so expiry compacts with
    /// `swap_remove` rather than a shifting `retain`.
    fn retire(&mut self, now: Cycle) {
        if self.earliest > now {
            return;
        }
        let mut earliest = u64::MAX;
        let mut i = 0;
        while i < self.lines.len() {
            let completion = self.completions[i];
            if completion <= now.raw() {
                self.lines.swap_remove(i);
                self.completions.swap_remove(i);
            } else {
                earliest = earliest.min(completion);
                i += 1;
            }
        }
        self.earliest = Cycle::new(earliest);
    }

    /// Clears all entries.
    pub fn reset(&mut self) {
        self.lines.clear();
        self.completions.clear();
        self.earliest = Cycle::new(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_retire_cycle() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.lookup(Cycle::new(0), 1), MshrOutcome::Allocated);
        m.commit(1, Cycle::new(50));
        assert_eq!(m.in_flight(Cycle::new(0)), 1);

        match m.lookup(Cycle::new(10), 1) {
            MshrOutcome::Merged { completion } => {
                assert_eq!(completion, Cycle::new(50));
            }
            other => panic!("expected merge, got {other:?}"),
        }

        // After completion, the entry is retired and the line re-allocates.
        assert_eq!(m.lookup(Cycle::new(51), 1), MshrOutcome::Allocated);
        assert_eq!(m.in_flight(Cycle::new(51)), 0);
    }

    #[test]
    fn full_file_reports_earliest_free() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.lookup(Cycle::new(0), 1), MshrOutcome::Allocated);
        m.commit(1, Cycle::new(100));
        assert_eq!(m.lookup(Cycle::new(0), 2), MshrOutcome::Allocated);
        m.commit(2, Cycle::new(80));
        match m.lookup(Cycle::new(0), 3) {
            MshrOutcome::Full { free_at } => {
                assert_eq!(free_at, Cycle::new(80));
            }
            other => panic!("expected full, got {other:?}"),
        }
        // Once the earliest entry retires there is room again.
        assert_eq!(m.lookup(Cycle::new(81), 3), MshrOutcome::Allocated);
    }

    #[test]
    fn full_free_at_is_exact_after_partial_retirement() {
        // Retire a strict subset of entries, refill, and check the Full
        // stall time still equals the true minimum — the cache must be
        // maintained, not merely initialized.
        let mut m = MshrFile::new(2);
        m.lookup(Cycle::new(0), 1);
        m.commit(1, Cycle::new(60));
        m.lookup(Cycle::new(0), 2);
        m.commit(2, Cycle::new(140));
        // now=70 retires line 1 only; refill with a later completion.
        assert_eq!(m.lookup(Cycle::new(70), 3), MshrOutcome::Allocated);
        m.commit(3, Cycle::new(90));
        match m.lookup(Cycle::new(71), 4) {
            MshrOutcome::Full { free_at } => assert_eq!(free_at, Cycle::new(90)),
            other => panic!("expected full, got {other:?}"),
        }
    }

    #[test]
    fn completion_extremes() {
        let mut m = MshrFile::new(4);
        assert!(m.earliest_completion().is_none());
        m.lookup(Cycle::new(0), 1);
        m.commit(1, Cycle::new(30));
        m.lookup(Cycle::new(0), 2);
        m.commit(2, Cycle::new(90));
        assert_eq!(m.earliest_completion(), Some(Cycle::new(30)));
        assert_eq!(m.latest_completion(), Some(Cycle::new(90)));
    }

    #[test]
    #[should_panic(expected = "full MSHR")]
    fn commit_past_capacity_panics() {
        let mut m = MshrFile::new(1);
        m.commit(1, Cycle::new(10));
        m.commit(2, Cycle::new(10));
    }

    #[test]
    #[should_panic(expected = "already has an MSHR entry")]
    fn duplicate_commit_panics() {
        let mut m = MshrFile::new(2);
        m.commit(1, Cycle::new(10));
        m.commit(1, Cycle::new(20));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn try_new_reports_zero_capacity_as_error() {
        assert_eq!(MshrFile::try_new(0).unwrap_err(), ConfigError::ZeroMshrs);
        assert_eq!(MshrFile::try_new(4).unwrap().capacity(), 4);
    }

    #[test]
    fn reset_empties_the_file() {
        let mut m = MshrFile::new(2);
        m.lookup(Cycle::new(0), 1);
        m.commit(1, Cycle::new(10));
        m.reset();
        assert_eq!(m.in_flight(Cycle::new(0)), 0);
        assert_eq!(m.capacity(), 2);
    }
}
