//! The crate's error type for rejected memory-component configurations.
//!
//! The constructors keep their documented panicking behaviour (a bad
//! hard-coded config in a benchmark *should* abort), but every validation
//! also exists as a fallible `try_*` method returning [`ConfigError`] so
//! fuzz- and service-supplied configurations fail as values instead of
//! unwinding. Each variant's `Display` text is byte-identical to the
//! message the corresponding panicking path aborts with, so front-ends can
//! surface either uniformly.

use core::fmt;

/// Why a memory-component configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The DRAM geometry had zero banks.
    ZeroBanks,
    /// The DRAM row is smaller than one cache line.
    RowTooSmall {
        /// The rejected row size in bytes.
        row_bytes: u64,
    },
    /// The refresh window is at least as long as the refresh interval.
    RefreshTooLong,
    /// An MSHR file was requested with zero entries.
    ZeroMshrs,
    /// A fault-injection plan failed its own validation; the payload is
    /// the message from [`DramFaultConfig::validate`](crate::DramFaultConfig::validate).
    Fault(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBanks => f.write_str("DRAM needs at least one bank"),
            ConfigError::RowTooSmall { row_bytes } => {
                write!(f, "row must hold at least one line, got {row_bytes} bytes")
            }
            ConfigError::RefreshTooLong => {
                f.write_str("refresh duration must be shorter than the interval")
            }
            ConfigError::ZeroMshrs => f.write_str("MSHR capacity must be non-zero"),
            ConfigError::Fault(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_the_panicking_paths() {
        assert!(ConfigError::ZeroBanks
            .to_string()
            .contains("at least one bank"));
        assert!(ConfigError::RowTooSmall { row_bytes: 8 }
            .to_string()
            .contains("at least one line"));
        assert!(ConfigError::RefreshTooLong
            .to_string()
            .contains("refresh duration"));
        assert!(ConfigError::ZeroMshrs.to_string().contains("non-zero"));
        assert_eq!(
            ConfigError::Fault("spike probability out of range".to_owned()).to_string(),
            "spike probability out of range"
        );
    }
}
