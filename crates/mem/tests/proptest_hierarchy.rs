//! Property tests over the latency histogram, the assembled hierarchy,
//! the MSHR earliest-completion cache, and live-vs-reference equivalence.

use proptest::prelude::*;

use mapg_mem::{
    DramFaultConfig, HierarchyConfig, LatencyHistogram, MemoryHierarchy, MshrFile, MshrOutcome,
    PagePolicy, PrefetchConfig, ReferenceHierarchy, ServiceLevel,
};
use mapg_trace::{AccessKind, MemAccess};
use mapg_units::{Cycle, Cycles};

proptest! {
    #[test]
    fn histogram_bounds_exact_statistics(
        samples in prop::collection::vec(0u64..1_000_000, 1..2_000)
    ) {
        let mut histogram = LatencyHistogram::new();
        for &s in &samples {
            histogram.record(Cycles::new(s));
        }
        let exact_mean =
            samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(histogram.mean(), Cycles::new(exact_mean));
        prop_assert_eq!(
            histogram.min(),
            Cycles::new(*samples.iter().min().expect("non-empty"))
        );
        prop_assert_eq!(
            histogram.max(),
            Cycles::new(*samples.iter().max().expect("non-empty"))
        );
        prop_assert_eq!(histogram.count(), samples.len() as u64);

        // The bucketed quantile can only exceed the exact one by at most
        // one power-of-two bucket, and must never undercut it by more
        // than a bucket either.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.25, 0.5, 0.9, 0.99] {
            let index =
                ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[index];
            let bucketed = histogram.percentile(q).raw();
            prop_assert!(
                bucketed >= exact / 2,
                "q={q}: bucketed {bucketed} far below exact {exact}"
            );
            prop_assert!(
                bucketed <= exact.saturating_mul(2).max(1),
                "q={q}: bucketed {bucketed} far above exact {exact}"
            );
        }
    }

    #[test]
    fn fraction_above_is_monotone_in_threshold(
        samples in prop::collection::vec(0u64..100_000, 1..500),
        t1 in 0u64..100_000,
        t2 in 0u64..100_000,
    ) {
        let mut histogram = LatencyHistogram::new();
        for &s in &samples {
            histogram.record(Cycles::new(s));
        }
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(
            histogram.fraction_above(Cycles::new(lo))
                >= histogram.fraction_above(Cycles::new(hi))
        );
    }

    #[test]
    fn hierarchy_completions_always_after_issue(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..500),
        writes in prop::collection::vec(any::<bool>(), 500),
    ) {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut now = Cycle::ZERO;
        for (i, &addr) in addrs.iter().enumerate() {
            let access = MemAccess {
                addr,
                pc: 0x400,
                kind: if writes[i % writes.len()] {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                dependent: false,
            };
            let response = memory.access(now, &access);
            prop_assert!(response.completion > now, "zero-latency access");
            match response.level {
                ServiceLevel::Dram => prop_assert!(response.row.is_some()),
                _ => prop_assert!(response.row.is_none()),
            }
            // Advance time somewhat arbitrarily but monotonically.
            now += Cycles::new(1 + (addr % 7));
        }
    }

    #[test]
    fn hierarchy_stats_conserve_accesses(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..500),
    ) {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut now = Cycle::ZERO;
        for &addr in &addrs {
            let access = MemAccess {
                addr,
                pc: 0x1,
                kind: AccessKind::Load,
                dependent: false,
            };
            let response = memory.access(now, &access);
            now = response.completion;
        }
        let stats = memory.stats();
        prop_assert_eq!(stats.l1.accesses, addrs.len() as u64);
        // Every L1 miss consults L2 (demand path; writeback installs may
        // add more L2 traffic, never less).
        prop_assert!(stats.l2.accesses >= stats.l1.misses());
        // Every recorded miss latency corresponds to a DRAM access.
        prop_assert!(stats.miss_latency.count() <= stats.dram.accesses());
    }

    /// The MSHR `earliest` cache is *exact* — equal to the true minimum
    /// completion over the in-flight entries — after every operation in a
    /// random lookup/commit/retire interleaving. The `Full` stall time and
    /// `earliest_completion` both read the cache, so this pins the bugfix
    /// that replaced the full-file re-minimization.
    #[test]
    fn mshr_earliest_cache_is_exact(
        capacity in 1usize..12,
        // (line, time delta, fetch latency) per step; small line space so
        // merges and re-allocations of retired lines both happen.
        ops in prop::collection::vec(
            (0u64..256, 1u64..40, 1u64..400),
            1..300,
        ),
    ) {
        let mut file = MshrFile::new(capacity);
        // Shadow model: the plain list of (line, completion) in flight.
        let mut shadow: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for (line, dt, latency) in ops {
            now += dt;
            shadow.retain(|&(_, c)| c > now);
            match file.lookup(Cycle::new(now), line) {
                MshrOutcome::Merged { completion } => {
                    let expected = shadow
                        .iter()
                        .find(|&&(l, _)| l == line)
                        .expect("merged line must be in flight")
                        .1;
                    prop_assert_eq!(completion.raw(), expected);
                }
                MshrOutcome::Full { free_at } => {
                    prop_assert_eq!(shadow.len(), capacity);
                    prop_assert!(shadow.iter().all(|&(l, _)| l != line));
                    let true_min =
                        shadow.iter().map(|&(_, c)| c).min().expect("full file");
                    prop_assert_eq!(
                        free_at.raw(), true_min,
                        "Full stall time must be the true minimum"
                    );
                }
                MshrOutcome::Allocated => {
                    prop_assert!(shadow.len() < capacity);
                    prop_assert!(shadow.iter().all(|&(l, _)| l != line));
                    let completion = now + latency;
                    file.commit(line, Cycle::new(completion));
                    shadow.push((line, completion));
                }
            }
            let true_min = shadow.iter().map(|&(_, c)| c).min();
            prop_assert_eq!(
                file.earliest_completion().map(Cycle::raw),
                true_min,
                "cached earliest diverged from the true minimum"
            );
        }
    }

    /// Differential oracle: the flattened hot path and the frozen seed
    /// [`ReferenceHierarchy`] answer every access identically — completion
    /// time, service level, row-buffer outcome — and land on identical
    /// stats, across random address streams, page policies, MSHR
    /// capacities, prefetcher settings and fault plans.
    #[test]
    fn fast_hierarchy_matches_reference(
        policy in prop_oneof![Just(PagePolicy::Open), Just(PagePolicy::Closed)],
        mshr_entries in 1usize..24,
        prefetch in any::<bool>(),
        faults in prop_oneof![
            Just(DramFaultConfig::none()),
            (1u32..=10u32, 50u64..2_000, 500u64..5_000, any::<u64>()).prop_map(
                |(prob, spike, window, seed)| DramFaultConfig {
                    spike_prob: f64::from(prob) / 10.0,
                    spike_cycles: Cycles::new(spike),
                    window_cycles: window,
                    seed,
                }
            ),
        ],
        // (base, run length, is_write) segments: sequential runs wake the
        // stream prefetcher, scattered bases exercise bank conflicts.
        segments in prop::collection::vec(
            (0u64..(1 << 26), 1usize..32, any::<bool>()),
            1..60,
        ),
    ) {
        let base_config = HierarchyConfig::baseline();
        let config = HierarchyConfig {
            dram: base_config.dram.with_page_policy(policy),
            mshr_entries,
            prefetch: if prefetch {
                PrefetchConfig::stream()
            } else {
                PrefetchConfig::disabled()
            },
            dram_faults: faults,
            ..base_config
        };
        let mut live = MemoryHierarchy::new(config);
        let mut reference = ReferenceHierarchy::new(config);
        let mut now = Cycle::ZERO;
        let mut i = 0u64;
        for &(base, run, is_write) in &segments {
            for step in 0..run as u64 {
                let addr = (base & !63) + step * 64;
                let access = MemAccess {
                    addr,
                    pc: 0x400 + i,
                    kind: if is_write { AccessKind::Store } else { AccessKind::Load },
                    dependent: false,
                };
                let a = live.access(now, &access);
                let b = reference.access(now, &access);
                prop_assert_eq!(a, b, "access {} @ {:#x} diverged", i, addr);
                // Alternate between waiting for the data and firing the
                // next access quickly, like a core with some MLP.
                now = if i.is_multiple_of(3) {
                    a.completion
                } else {
                    now + Cycles::new(1 + (addr % 7))
                };
                i += 1;
            }
        }
        prop_assert_eq!(live.stats(), reference.stats());
    }
}
