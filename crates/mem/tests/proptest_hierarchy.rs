//! Property tests over the latency histogram and the assembled hierarchy.

use proptest::prelude::*;

use mapg_mem::{HierarchyConfig, LatencyHistogram, MemoryHierarchy, ServiceLevel};
use mapg_trace::{AccessKind, MemAccess};
use mapg_units::{Cycle, Cycles};

proptest! {
    #[test]
    fn histogram_bounds_exact_statistics(
        samples in prop::collection::vec(0u64..1_000_000, 1..2_000)
    ) {
        let mut histogram = LatencyHistogram::new();
        for &s in &samples {
            histogram.record(Cycles::new(s));
        }
        let exact_mean =
            samples.iter().sum::<u64>() / samples.len() as u64;
        prop_assert_eq!(histogram.mean(), Cycles::new(exact_mean));
        prop_assert_eq!(
            histogram.min(),
            Cycles::new(*samples.iter().min().expect("non-empty"))
        );
        prop_assert_eq!(
            histogram.max(),
            Cycles::new(*samples.iter().max().expect("non-empty"))
        );
        prop_assert_eq!(histogram.count(), samples.len() as u64);

        // The bucketed quantile can only exceed the exact one by at most
        // one power-of-two bucket, and must never undercut it by more
        // than a bucket either.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.25, 0.5, 0.9, 0.99] {
            let index =
                ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[index];
            let bucketed = histogram.percentile(q).raw();
            prop_assert!(
                bucketed >= exact / 2,
                "q={q}: bucketed {bucketed} far below exact {exact}"
            );
            prop_assert!(
                bucketed <= exact.saturating_mul(2).max(1),
                "q={q}: bucketed {bucketed} far above exact {exact}"
            );
        }
    }

    #[test]
    fn fraction_above_is_monotone_in_threshold(
        samples in prop::collection::vec(0u64..100_000, 1..500),
        t1 in 0u64..100_000,
        t2 in 0u64..100_000,
    ) {
        let mut histogram = LatencyHistogram::new();
        for &s in &samples {
            histogram.record(Cycles::new(s));
        }
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(
            histogram.fraction_above(Cycles::new(lo))
                >= histogram.fraction_above(Cycles::new(hi))
        );
    }

    #[test]
    fn hierarchy_completions_always_after_issue(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..500),
        writes in prop::collection::vec(any::<bool>(), 500),
    ) {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut now = Cycle::ZERO;
        for (i, &addr) in addrs.iter().enumerate() {
            let access = MemAccess {
                addr,
                pc: 0x400,
                kind: if writes[i % writes.len()] {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                dependent: false,
            };
            let response = memory.access(now, &access);
            prop_assert!(response.completion > now, "zero-latency access");
            match response.level {
                ServiceLevel::Dram => prop_assert!(response.row.is_some()),
                _ => prop_assert!(response.row.is_none()),
            }
            // Advance time somewhat arbitrarily but monotonically.
            now += Cycles::new(1 + (addr % 7));
        }
    }

    #[test]
    fn hierarchy_stats_conserve_accesses(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..500),
    ) {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut now = Cycle::ZERO;
        for &addr in &addrs {
            let access = MemAccess {
                addr,
                pc: 0x1,
                kind: AccessKind::Load,
                dependent: false,
            };
            let response = memory.access(now, &access);
            now = response.completion;
        }
        let stats = memory.stats();
        prop_assert_eq!(stats.l1.accesses, addrs.len() as u64);
        // Every L1 miss consults L2 (demand path; writeback installs may
        // add more L2 traffic, never less).
        prop_assert!(stats.l2.accesses >= stats.l1.misses());
        // Every recorded miss latency corresponds to a DRAM access.
        prop_assert!(stats.miss_latency.count() <= stats.dram.accesses());
    }
}
