//! Property tests: the set-associative cache against an executable
//! reference model (a per-set LRU list), plus geometry invariants.

use proptest::prelude::*;
use std::collections::VecDeque;

use mapg_mem::{Cache, CacheConfig, CacheOutcome, ReplacementPolicy};
use mapg_units::Cycles;

/// A deliberately naive reference: per-set LRU as an ordered deque of
/// (tag, dirty).
struct ReferenceCache {
    sets: Vec<VecDeque<(u64, bool)>>,
    ways: usize,
    line: u64,
}

impl ReferenceCache {
    fn new(config: &CacheConfig) -> Self {
        ReferenceCache {
            sets: (0..config.sets()).map(|_| VecDeque::new()).collect(),
            ways: config.associativity as usize,
            line: config.line_bytes,
        }
    }

    /// Returns (hit, dirty_eviction_line).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line = addr / self.line;
        let set_count = self.sets.len() as u64;
        let set = (line % set_count) as usize;
        let tag = line / set_count;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&(t, _)| t == tag) {
            let (_, dirty) = entries.remove(pos).expect("position exists");
            entries.push_back((tag, dirty || write));
            return (true, None);
        }
        let mut evicted = None;
        if entries.len() == self.ways {
            let (victim_tag, dirty) = entries.pop_front().expect("full set is non-empty");
            if dirty {
                evicted = Some(victim_tag * set_count + set as u64);
            }
        }
        entries.push_back((tag, write));
        (false, evicted)
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        size_bytes: 2048,
        associativity: 4,
        line_bytes: 64,
        hit_latency: Cycles::new(1),
        replacement: ReplacementPolicy::Lru,
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec((0u64..16_384, any::<bool>()), 1..2_000)
    ) {
        let config = small_config();
        let mut cache = Cache::new(config);
        let mut reference = ReferenceCache::new(&config);
        for (addr, write) in accesses {
            let outcome = cache.access(addr, write);
            let (ref_hit, ref_evict) = reference.access(addr, write);
            match outcome {
                CacheOutcome::Hit { .. } => prop_assert!(ref_hit, "model hit, reference missed @{addr:#x}"),
                CacheOutcome::Miss { writeback } => {
                    prop_assert!(!ref_hit, "model missed, reference hit @{addr:#x}");
                    prop_assert_eq!(
                        writeback,
                        ref_evict,
                        "writeback mismatch @{:#x}",
                        addr
                    );
                }
            }
        }
    }

    #[test]
    fn hit_rate_is_one_for_single_line(
        offsets in prop::collection::vec(0u64..64, 2..100)
    ) {
        // All accesses inside one line: everything after the first hits.
        let mut cache = Cache::new(small_config());
        cache.access(offsets[0], false);
        for &offset in &offsets[1..] {
            prop_assert!(cache.access(offset, false).is_hit());
        }
    }

    #[test]
    fn stats_count_every_access(
        accesses in prop::collection::vec((0u64..65_536, any::<bool>()), 1..500)
    ) {
        let mut cache = Cache::new(small_config());
        for &(addr, write) in &accesses {
            cache.access(addr, write);
        }
        prop_assert_eq!(cache.stats().accesses, accesses.len() as u64);
        prop_assert!(cache.stats().hits <= cache.stats().accesses);
        prop_assert!(cache.stats().writebacks <= cache.stats().misses());
    }

    #[test]
    fn probe_agrees_with_subsequent_access(
        accesses in prop::collection::vec(0u64..8_192, 1..300),
        probe_addr in 0u64..8_192,
    ) {
        let mut cache = Cache::new(small_config());
        for &addr in &accesses {
            cache.access(addr, false);
        }
        let resident = cache.probe(probe_addr);
        let hit = cache.access(probe_addr, false).is_hit();
        prop_assert_eq!(resident, hit, "probe and access disagree");
    }
}
