//! Power and energy models for the MAPG reproduction.
//!
//! The original paper characterizes its sleep-transistor network with
//! circuit-level (SPICE) simulation and feeds five scalars into the policy
//! layer: sleep-entry latency, wake-up latency, transition energy, residual
//! leakage while gated, and the resulting **break-even time**. This crate
//! reproduces that interface with first-order analytic models whose
//! constants sit in the published 45 nm range, spanning the same design
//! space the paper's circuit table does (see DESIGN.md §2 for the
//! substitution argument).
//!
//! Components:
//!
//! - [`TechnologyParams`] — per-core power at nominal V/f, split into
//!   dynamic and leakage, plus the idle-clocking fraction;
//! - [`PgCircuitDesign`] — maps a sleep-transistor width ratio to
//!   latencies, energies, residual leakage, area and rush current, and
//!   computes the break-even time against a technology;
//! - [`OperatingPoint`] — DVFS states for the scale-down-during-stall
//!   baseline;
//! - [`DramEnergyModel`] — converts [`mapg_mem::DramStats`] activity into
//!   joules;
//! - [`EnergyAccount`] — the per-run energy ledger, split by category.
//!
//! # Example: break-even analysis
//!
//! ```
//! use mapg_power::{PgCircuitDesign, TechnologyParams};
//! use mapg_units::Hertz;
//!
//! let tech = TechnologyParams::bulk_45nm();
//! let circuit = PgCircuitDesign::fast_wakeup(&tech);
//! let bet = circuit.break_even_cycles(&tech, Hertz::from_ghz(2.0));
//! // MAPG's design point: break-even well under a DRAM round trip.
//! assert!(bet.raw() < 150, "break-even {bet} too long to gate memory stalls");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dram_energy;
mod dvfs;
mod energy;
mod pg_circuit;
mod tech;
mod thermal;

pub use dram_energy::DramEnergyModel;
pub use dvfs::OperatingPoint;
pub use energy::{EnergyAccount, EnergyCategory};
pub use pg_circuit::{PgCircuitDesign, RetentionStyle};
pub use tech::TechnologyParams;
pub use thermal::{ThermalOperatingPoint, ThermalParams, ThermalRunawayError};
