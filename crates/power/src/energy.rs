//! The per-run energy ledger.

use core::fmt;

use mapg_units::Joules;

/// Where a joule went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Core dynamic energy while executing.
    ActiveDynamic,
    /// Core leakage while executing.
    ActiveLeakage,
    /// Core energy while stalled but not gated (idle clocking + leakage, or
    /// DVFS-scaled equivalents).
    IdleStall,
    /// Residual leakage while power-gated.
    GatedResidual,
    /// Sleep/wake transition energy.
    Transition,
    /// DRAM access energy (activates + bursts).
    DramAccess,
    /// DRAM background (standby + refresh) energy.
    DramBackground,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 7] = [
        EnergyCategory::ActiveDynamic,
        EnergyCategory::ActiveLeakage,
        EnergyCategory::IdleStall,
        EnergyCategory::GatedResidual,
        EnergyCategory::Transition,
        EnergyCategory::DramAccess,
        EnergyCategory::DramBackground,
    ];

    /// Whether this category is part of the *core* (gateable) energy, as
    /// opposed to DRAM energy.
    pub fn is_core(self) -> bool {
        !matches!(
            self,
            EnergyCategory::DramAccess | EnergyCategory::DramBackground
        )
    }

    fn index(self) -> usize {
        match self {
            EnergyCategory::ActiveDynamic => 0,
            EnergyCategory::ActiveLeakage => 1,
            EnergyCategory::IdleStall => 2,
            EnergyCategory::GatedResidual => 3,
            EnergyCategory::Transition => 4,
            EnergyCategory::DramAccess => 5,
            EnergyCategory::DramBackground => 6,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnergyCategory::ActiveDynamic => "active-dynamic",
            EnergyCategory::ActiveLeakage => "active-leakage",
            EnergyCategory::IdleStall => "idle-stall",
            EnergyCategory::GatedResidual => "gated-residual",
            EnergyCategory::Transition => "transition",
            EnergyCategory::DramAccess => "dram-access",
            EnergyCategory::DramBackground => "dram-background",
        };
        f.write_str(s)
    }
}

impl EnergyCategory {
    /// Stable metric name (`energy_nj_*`) for the observability registry.
    fn metric_name(self) -> &'static str {
        match self {
            EnergyCategory::ActiveDynamic => "energy_nj_active_dynamic",
            EnergyCategory::ActiveLeakage => "energy_nj_active_leakage",
            EnergyCategory::IdleStall => "energy_nj_idle_stall",
            EnergyCategory::GatedResidual => "energy_nj_gated_residual",
            EnergyCategory::Transition => "energy_nj_transition",
            EnergyCategory::DramAccess => "energy_nj_dram_access",
            EnergyCategory::DramBackground => "energy_nj_dram_background",
        }
    }
}

/// Accumulates energy by category over a run.
///
/// ```
/// use mapg_power::{EnergyAccount, EnergyCategory};
/// use mapg_units::Joules;
///
/// let mut account = EnergyAccount::new();
/// account.add(EnergyCategory::ActiveDynamic, Joules::new(2.0));
/// account.add(EnergyCategory::DramAccess, Joules::new(1.0));
/// assert_eq!(account.total(), Joules::new(3.0));
/// assert_eq!(account.core_total(), Joules::new(2.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyAccount {
    buckets: [Joules; 7],
}

impl EnergyAccount {
    /// An empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Adds `amount` to `category`.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative — energy only accumulates.
    pub fn add(&mut self, category: EnergyCategory, amount: Joules) {
        assert!(
            amount.as_joules() >= 0.0,
            "cannot add negative energy ({amount}) to {category}"
        );
        self.buckets[category.index()] += amount;
    }

    /// Energy recorded in `category`.
    pub fn get(&self, category: EnergyCategory) -> Joules {
        self.buckets[category.index()]
    }

    /// Total energy across all categories.
    pub fn total(&self) -> Joules {
        self.buckets.iter().copied().sum()
    }

    /// Core-only (gateable) energy: everything but DRAM.
    pub fn core_total(&self) -> Joules {
        EnergyCategory::ALL
            .into_iter()
            .filter(|c| c.is_core())
            .map(|c| self.get(c))
            .sum()
    }

    /// Leakage-flavoured energy: active leakage + idle stall + gated
    /// residual. The quantity MAPG's "leakage savings" numbers compare.
    pub fn leakage_like_total(&self) -> Joules {
        self.get(EnergyCategory::ActiveLeakage)
            + self.get(EnergyCategory::IdleStall)
            + self.get(EnergyCategory::GatedResidual)
    }

    /// Dumps the ledger into an observability registry as `energy_nj_*`
    /// counters (whole nanojoules, rounded). Deterministic: a pure
    /// function of the bucket contents.
    pub fn record_metrics(&self, obs: &mapg_obs::ObsHandle) {
        for category in EnergyCategory::ALL {
            let nanojoules = (self.get(category).as_joules() * 1e9).round();
            if nanojoules.is_finite() && nanojoules >= 0.0 {
                obs.count(category.metric_name(), nanojoules as u64);
            }
        }
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Audits the ledger: every bucket must be finite and non-negative,
    /// and the total must equal the bucket sum (within floating-point
    /// slack). Returns one message per broken law.
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut sum = 0.0;
        for category in EnergyCategory::ALL {
            let value = self.get(category).as_joules();
            if !value.is_finite() || value < 0.0 {
                problems.push(format!(
                    "energy ledger: {category} holds non-physical {value} J"
                ));
                continue;
            }
            sum += value;
        }
        let total = self.total().as_joules();
        // Tolerance scaled to the magnitude: summation order may differ
        // from `total()` by a few ulps per bucket.
        let epsilon = sum.abs().max(1.0) * 1e-12;
        if problems.is_empty() && (total - sum).abs() > epsilon {
            problems.push(format!(
                "energy ledger: total {total} J disagrees with bucket sum \
                 {sum} J"
            ));
        }
        problems
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "total {total}")?;
        for category in EnergyCategory::ALL {
            let value = self.get(category);
            if value.as_joules() > 0.0 {
                writeln!(
                    f,
                    "  {category:<16} {value}  ({:.1}%)",
                    100.0 * (value / total)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_account_is_zero() {
        let account = EnergyAccount::new();
        assert_eq!(account.total(), Joules::ZERO);
        assert_eq!(account.core_total(), Joules::ZERO);
        for category in EnergyCategory::ALL {
            assert_eq!(account.get(category), Joules::ZERO);
        }
    }

    #[test]
    fn totals_partition() {
        let mut account = EnergyAccount::new();
        for (i, category) in EnergyCategory::ALL.into_iter().enumerate() {
            account.add(category, Joules::new((i + 1) as f64));
        }
        let total = account.total();
        let dram =
            account.get(EnergyCategory::DramAccess) + account.get(EnergyCategory::DramBackground);
        assert!(((account.core_total() + dram) / total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_like_components() {
        let mut account = EnergyAccount::new();
        account.add(EnergyCategory::ActiveLeakage, Joules::new(1.0));
        account.add(EnergyCategory::IdleStall, Joules::new(2.0));
        account.add(EnergyCategory::GatedResidual, Joules::new(3.0));
        account.add(EnergyCategory::ActiveDynamic, Joules::new(10.0));
        assert_eq!(account.leakage_like_total(), Joules::new(6.0));
    }

    #[test]
    #[should_panic(expected = "negative energy")]
    fn rejects_negative_energy() {
        let mut account = EnergyAccount::new();
        account.add(EnergyCategory::Transition, Joules::new(-1.0));
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = EnergyAccount::new();
        let mut b = EnergyAccount::new();
        a.add(EnergyCategory::ActiveDynamic, Joules::new(1.0));
        b.add(EnergyCategory::ActiveDynamic, Joules::new(2.0));
        b.add(EnergyCategory::Transition, Joules::new(0.5));
        a.merge(&b);
        assert_eq!(a.get(EnergyCategory::ActiveDynamic), Joules::new(3.0));
        assert_eq!(a.get(EnergyCategory::Transition), Joules::new(0.5));
    }

    #[test]
    fn display_lists_nonzero_buckets() {
        let mut account = EnergyAccount::new();
        account.add(EnergyCategory::GatedResidual, Joules::new(1.0));
        let text = account.to_string();
        assert!(text.contains("gated-residual"), "{text}");
        assert!(!text.contains("active-dynamic"), "{text}");
    }

    #[test]
    fn category_core_predicate() {
        assert!(EnergyCategory::ActiveDynamic.is_core());
        assert!(EnergyCategory::Transition.is_core());
        assert!(!EnergyCategory::DramAccess.is_core());
        assert!(!EnergyCategory::DramBackground.is_core());
    }

    #[test]
    fn audit_accepts_physical_ledgers() {
        let mut account = EnergyAccount::new();
        assert!(account.audit().is_empty(), "empty ledger is physical");
        account.add(EnergyCategory::ActiveDynamic, Joules::new(1.25));
        account.add(EnergyCategory::DramAccess, Joules::new(0.75));
        assert!(account.audit().is_empty(), "{:?}", account.audit());
    }

    #[test]
    fn audit_flags_non_finite_buckets() {
        let mut account = EnergyAccount::new();
        // `add` forbids negative energy but cannot stop NaN/inf arising
        // from degenerate power × time products upstream; the audit must.
        account.add(EnergyCategory::IdleStall, Joules::new(f64::INFINITY));
        let problems = account.audit();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("idle-stall"), "{problems:?}");
    }
}
