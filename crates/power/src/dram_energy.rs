//! DRAM energy model: converts controller activity counters into joules.
//!
//! Per-operation energies sit in the DDR3 x8-device datasheet range
//! (activate ≈ 15 nJ, read/write burst ≈ 10/12 nJ per 64 B line across the
//! rank) plus a background term for standby/refresh power. DRAM energy is
//! reported separately from core energy in every experiment — core gating
//! does not change it except through runtime (background term).

use mapg_mem::DramStats;
use mapg_units::{Joules, Seconds, Watts};

/// Converts [`DramStats`] into energy.
///
/// ```
/// use mapg_power::DramEnergyModel;
/// use mapg_mem::DramStats;
/// use mapg_units::Seconds;
///
/// let model = DramEnergyModel::ddr3();
/// let stats = DramStats { reads: 1000, writes: 200, activates: 400, ..DramStats::default() };
/// let energy = model.energy(&stats, Seconds::new(1e-3));
/// assert!(energy.as_joules() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyModel {
    /// Energy per row activation (precharge+activate pair amortized).
    pub activate_energy: Joules,
    /// Energy per read burst (one cache line).
    pub read_energy: Joules,
    /// Energy per write burst (one cache line).
    pub write_energy: Joules,
    /// Standby + refresh background power of the rank.
    pub background_power: Watts,
}

impl DramEnergyModel {
    /// DDR3-class defaults.
    pub fn ddr3() -> Self {
        DramEnergyModel {
            activate_energy: Joules::from_picojoules(15_000.0),
            read_energy: Joules::from_picojoules(10_000.0),
            write_energy: Joules::from_picojoules(12_000.0),
            background_power: Watts::from_milliwatts(150.0),
        }
    }

    /// Total DRAM energy for the given activity over `elapsed` wall-clock
    /// time.
    pub fn energy(&self, stats: &DramStats, elapsed: Seconds) -> Joules {
        self.access_energy(stats) + self.background_power * elapsed
    }

    /// The activity-proportional part only.
    pub fn access_energy(&self, stats: &DramStats) -> Joules {
        self.activate_energy * stats.activates as f64
            + self.read_energy * stats.reads as f64
            + self.write_energy * stats.writes as f64
    }
}

impl Default for DramEnergyModel {
    fn default() -> Self {
        DramEnergyModel::ddr3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_activity_is_background_only() {
        let model = DramEnergyModel::ddr3();
        let stats = DramStats::default();
        let elapsed = Seconds::new(2.0);
        let energy = model.energy(&stats, elapsed);
        assert_eq!(energy, model.background_power * elapsed);
        assert_eq!(model.access_energy(&stats), Joules::ZERO);
    }

    #[test]
    fn access_energy_sums_components() {
        let model = DramEnergyModel::ddr3();
        let stats = DramStats {
            reads: 10,
            writes: 5,
            activates: 3,
            ..DramStats::default()
        };
        let expected = 3.0 * 15e-9 + 10.0 * 10e-9 + 5.0 * 12e-9;
        assert!((model.access_energy(&stats).as_joules() - expected).abs() < 1e-15);
    }

    #[test]
    fn row_hits_are_cheaper_than_conflicts() {
        // Same access count, fewer activates ⇒ less energy. This is why
        // row-buffer locality matters to the total energy numbers.
        let model = DramEnergyModel::ddr3();
        let hits = DramStats {
            reads: 100,
            activates: 10,
            ..DramStats::default()
        };
        let conflicts = DramStats {
            reads: 100,
            activates: 100,
            ..DramStats::default()
        };
        assert!(model.access_energy(&hits) < model.access_energy(&conflicts));
    }

    #[test]
    fn longer_runtime_costs_more_background() {
        let model = DramEnergyModel::ddr3();
        let stats = DramStats::default();
        let short = model.energy(&stats, Seconds::new(1e-3));
        let long = model.energy(&stats, Seconds::new(2e-3));
        assert!(long > short);
    }
}
