//! DVFS operating points for the scale-down-during-stall baseline.
//!
//! Before MAPG, the standard way to trim energy during low-utilization
//! periods was voltage/frequency scaling. DVFS cannot remove leakage (the
//! rail stays up) and its transition latency (PLL relock + rail slew,
//! microseconds) dwarfs a memory stall — which is exactly the comparison
//! the DVFS-baseline experiments draw. Scaling laws used here:
//!
//! - dynamic power `∝ V²·f` (CV²f with activity fixed);
//! - leakage power `∝ V³` (subthreshold + gate leakage voltage dependence,
//!   the usual compact-model fit in this range).

use mapg_units::{Hertz, Joules, Seconds, Volts, Watts};

use crate::tech::TechnologyParams;

/// One voltage/frequency operating point.
///
/// ```
/// use mapg_power::{OperatingPoint, TechnologyParams};
///
/// let tech = TechnologyParams::bulk_45nm();
/// let low = OperatingPoint::low();
/// assert!(low.dynamic_power(&tech) < tech.dynamic_power());
/// assert!(low.leakage_power(&tech) < tech.leakage_power());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    name: &'static str,
    voltage: Volts,
    frequency: Hertz,
}

impl OperatingPoint {
    /// The nominal point: 1.0 V / 2.0 GHz.
    pub fn nominal() -> Self {
        OperatingPoint {
            name: "nominal",
            voltage: Volts::new(1.0),
            frequency: Hertz::from_ghz(2.0),
        }
    }

    /// A mid point: 0.85 V / 1.2 GHz.
    pub fn low() -> Self {
        OperatingPoint {
            name: "low",
            voltage: Volts::new(0.85),
            frequency: Hertz::from_ghz(1.2),
        }
    }

    /// The floor point: 0.7 V / 0.6 GHz.
    pub fn min() -> Self {
        OperatingPoint {
            name: "min",
            voltage: Volts::new(0.7),
            frequency: Hertz::from_ghz(0.6),
        }
    }

    /// Creates a custom point.
    ///
    /// # Panics
    ///
    /// Panics if voltage or frequency is not positive.
    pub fn new(name: &'static str, voltage: Volts, frequency: Hertz) -> Self {
        assert!(voltage.as_volts() > 0.0, "voltage must be positive");
        assert!(frequency.as_hz() > 0.0, "frequency must be positive");
        OperatingPoint {
            name,
            voltage,
            frequency,
        }
    }

    /// The point's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Supply voltage at this point.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Clock frequency at this point.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Dynamic power at this point when fully active: `P_dyn·(V/V0)²·(f/f0)`.
    pub fn dynamic_power(&self, tech: &TechnologyParams) -> Watts {
        let v = self.voltage / tech.vdd();
        let f = self.frequency / tech.nominal_clock();
        tech.dynamic_power() * (v * v * f)
    }

    /// Leakage power at this point: `P_leak·(V/V0)³`.
    pub fn leakage_power(&self, tech: &TechnologyParams) -> Watts {
        let v = self.voltage / tech.vdd();
        tech.leakage_power() * (v * v * v)
    }

    /// Idle (stalled-but-clocked) power at this point: scaled idle dynamic
    /// plus scaled leakage — what a core parked at this point burns while
    /// waiting on memory.
    pub fn idle_power(&self, tech: &TechnologyParams) -> Watts {
        let v = self.voltage / tech.vdd();
        let f = self.frequency / tech.nominal_clock();
        tech.idle_dynamic_power() * (v * v * f) + self.leakage_power(tech)
    }
}

impl OperatingPoint {
    /// Analytic estimate of an *interval-based, memory-aware DVFS
    /// governor* parked at this point during memory-bound execution.
    ///
    /// Given a measured run's wall-clock split into `active` (core
    /// executing, at nominal V/f) and `stalled` (waiting on DRAM) time,
    /// the governor's outcome follows from two facts:
    ///
    /// - active work is a fixed *cycle count*, so it stretches by the
    ///   frequency ratio: `active' = active · f₀/f`; its dynamic energy is
    ///   `CV²`-per-cycle, i.e. scales only with `V²`;
    /// - memory time is wall-clock (DRAM doesn't care about the core's
    ///   clock), so `stalled' = stalled`; the stalled core is clock-gated
    ///   and burns `V³`-scaled leakage.
    ///
    /// This is the idealized best case for the governor (perfect phase
    /// detection, free transitions) — the fair-but-optimistic baseline
    /// experiment R-F14 compares MAPG against. Returns
    /// `(runtime, core_energy)`.
    pub fn estimate_interval_governor(
        &self,
        tech: &TechnologyParams,
        active: Seconds,
        stalled: Seconds,
    ) -> (Seconds, Joules) {
        let f_ratio = self.frequency / tech.nominal_clock();
        let v_ratio = self.voltage / tech.vdd();
        let stretched_active = active / f_ratio;
        let runtime = stretched_active + stalled;
        // Dynamic: same cycle count, V²-scaled energy per cycle.
        let dynamic_energy = tech.dynamic_power() * (v_ratio * v_ratio) * active;
        // Leakage: V³-scaled power over the whole (stretched) runtime.
        let leakage_energy = tech.leakage_power() * (v_ratio * v_ratio * v_ratio) * runtime;
        (runtime, dynamic_energy + leakage_energy)
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechnologyParams {
        TechnologyParams::bulk_45nm()
    }

    #[test]
    fn nominal_point_reproduces_tech_power() {
        let t = tech();
        let p = OperatingPoint::nominal();
        assert!((p.dynamic_power(&t) / t.dynamic_power() - 1.0).abs() < 1e-9);
        assert!((p.leakage_power(&t) / t.leakage_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_laws() {
        let t = tech();
        let p = OperatingPoint::low();
        let v = 0.85f64;
        let f = 1.2 / 2.0;
        let expected_dyn = 0.7 * v * v * f;
        let expected_leak = 0.3 * v * v * v;
        assert!((p.dynamic_power(&t).as_watts() - expected_dyn).abs() < 1e-9);
        assert!((p.leakage_power(&t).as_watts() - expected_leak).abs() < 1e-9);
    }

    #[test]
    fn points_are_monotone() {
        let t = tech();
        let points = [
            OperatingPoint::nominal(),
            OperatingPoint::low(),
            OperatingPoint::min(),
        ];
        for pair in points.windows(2) {
            assert!(pair[1].dynamic_power(&t) < pair[0].dynamic_power(&t));
            assert!(pair[1].leakage_power(&t) < pair[0].leakage_power(&t));
            assert!(pair[1].idle_power(&t) < pair[0].idle_power(&t));
        }
    }

    #[test]
    fn dvfs_leakage_never_reaches_gated_levels() {
        // Even the floor point leaks ~34% of nominal; a gated core leaks
        // ~2%. This gap is the paper's core argument against DVFS for
        // memory stalls.
        let t = tech();
        let floor_leak = OperatingPoint::min().leakage_power(&t);
        assert!(floor_leak.as_watts() > 0.1 * t.leakage_power().as_watts());
    }

    #[test]
    fn interval_governor_estimate_behaves() {
        let t = tech();
        let active = Seconds::new(1e-3);
        let stalled = Seconds::new(4e-3); // heavily memory-bound

        // At the nominal point the estimate must reproduce the plain run
        // (clock-gated stalls).
        let (runtime, energy) =
            OperatingPoint::nominal().estimate_interval_governor(&t, active, stalled);
        assert!((runtime.as_secs() - 5e-3).abs() < 1e-12);
        let expected = t.dynamic_power() * active + t.leakage_power() * Seconds::new(5e-3);
        assert!((energy / expected - 1.0).abs() < 1e-9);

        // At the floor point: runtime stretches only by the (small)
        // active share; energy drops.
        let (slow_runtime, slow_energy) =
            OperatingPoint::min().estimate_interval_governor(&t, active, stalled);
        assert!(slow_runtime > runtime);
        assert!(
            slow_runtime.as_secs() < 5e-3 * 1.5,
            "memory-bound code barely slows down: {slow_runtime}"
        );
        assert!(slow_energy < energy);
    }

    #[test]
    fn interval_governor_hurts_compute_bound_runtime() {
        let t = tech();
        let active = Seconds::new(4e-3);
        let stalled = Seconds::new(1e-3);
        let (runtime, _) = OperatingPoint::min().estimate_interval_governor(&t, active, stalled);
        // 4 ms of cycles at 0.3x frequency = 13.3 ms + 1 ms memory.
        assert!(runtime.as_secs() > 10e-3);
    }

    #[test]
    fn idle_power_includes_both_terms() {
        let t = tech();
        let p = OperatingPoint::nominal();
        let expected = t.idle_dynamic_power() + t.leakage_power();
        assert!((p.idle_power(&t) / expected - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "voltage must be positive")]
    fn rejects_zero_voltage() {
        let _ = OperatingPoint::new("bad", Volts::ZERO, Hertz::from_ghz(1.0));
    }

    #[test]
    fn accessors() {
        let p = OperatingPoint::min();
        assert_eq!(p.name(), "min");
        assert_eq!(p.voltage(), Volts::new(0.7));
        assert_eq!(p.frequency(), Hertz::from_ghz(0.6));
    }
}
