//! The sleep-transistor (power-gating) circuit design space.
//!
//! A power-gating design inserts header switches between the supply and the
//! core's virtual-VDD rail. One free parameter — the **switch width ratio**
//! `W_switch / W_core` — controls every figure of merit through first-order
//! physics:
//!
//! | figure of merit | first-order law | direction |
//! |---|---|---|
//! | wake-up latency | `t_wake ≈ C_virtual·Vdd / I_switch ∝ 1/ratio` | wider = faster |
//! | residual leakage | switch off-current `∝ ratio` (plus retention floor) | wider = leakier |
//! | rush current | `I ≈ C_virtual·Vdd / t_wake` | wider = harsher |
//! | area overhead | switch area `∝ ratio` | wider = bigger |
//! | transition energy | `≈ C_virtual·Vdd²` per sleep/wake pair | ~constant |
//!
//! MAPG's circuit contribution is choosing this trade-off for *fast* wakeup
//! so the break-even time shrinks to a fraction of one DRAM access. The
//! constants below place a 3 %-width design at ≈5 ns wake-up and ≈40-cycle
//! break-even at 2 GHz — inside the envelope DATE-era 45 nm studies report.

use mapg_units::{Amperes, Cycles, Hertz, Joules, Ratio, Seconds};

use crate::tech::TechnologyParams;

/// What happens to the core's state when the rail collapses.
///
/// The choice trades residual leakage against restart cost:
///
/// - **Retentive**: balloon/retention flops hold architectural state on an
///   always-on shadow rail. Restart is instant, but the shadow rail leaks
///   (the residual-leakage *floor*).
/// - **Non-retentive**: architectural state is flushed to the (ungated) L2
///   before collapse. Sleep entry takes longer (the flush) and every wake
///   pays a cold-start penalty (pipeline/predictor refill), but the floor
///   leakage drops — there is nothing left to keep alive.
///
/// MAPG's default is retentive: per-stall gating wakes far too often to
/// amortize cold starts (experiment R-F12 quantifies exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetentionStyle {
    /// Retention flops hold state; instant restart.
    Retentive,
    /// State flushed; wake pays a cold-start refill penalty.
    NonRetentive,
}

/// Virtual-rail capacitance charged on every wake-up (farads).
/// Core circuit + local decap for a ~1 W embedded core.
const C_VIRTUAL_F: f64 = 5e-9;

/// Control/sequencing energy overhead multiplier on the CV² charge.
const TRANSITION_OVERHEAD: f64 = 1.2;

/// Wake-up time scaling constant: `t_wake = K_WAKE / ratio` seconds.
/// Calibrated so a 3 % switch wakes in 5 ns.
const K_WAKE_S: f64 = 0.15e-9;

/// Sleep-entry time (isolate outputs, assert sleep): fixed.
const T_ENTRY_S: f64 = 1.5e-9;

/// Residual leakage floor with retention flops (shadow rail + control).
const RESIDUAL_FLOOR: f64 = 0.01;

/// Residual leakage floor without retention (control logic only).
const RESIDUAL_FLOOR_NON_RETENTIVE: f64 = 0.003;

/// Extra sleep-entry time for the architectural-state flush (seconds).
const T_FLUSH_S: f64 = 4.0e-9;

/// Cold-start refill time after a non-retentive wake (pipeline, branch
/// predictor warm-up; seconds).
const T_COLD_START_S: f64 = 10.0e-9;

/// Residual leakage slope versus switch width ratio.
const RESIDUAL_SLOPE: f64 = 0.4;

/// Area overhead per unit of switch width ratio.
const AREA_SLOPE: f64 = 0.9;

/// One point in the power-gating circuit design space.
///
/// See the [crate-level example](crate) for break-even usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgCircuitDesign {
    switch_width_ratio: f64,
    retention: RetentionStyle,
    entry_time: Seconds,
    wakeup_time: Seconds,
    cold_start_time: Seconds,
    transition_energy: Joules,
    residual_leakage: Ratio,
    area_overhead: Ratio,
    rush_current: Amperes,
}

impl PgCircuitDesign {
    /// Derives a design point from the switch width ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0.005, 0.2]` — below, the switch
    /// cannot deliver the core's active current (IR-drop violation); above,
    /// the model's first-order laws stop holding.
    pub fn from_switch_width(ratio: f64, tech: &TechnologyParams) -> Self {
        assert!(
            (0.005..=0.2).contains(&ratio),
            "switch width ratio must be in [0.005, 0.2], got {ratio}"
        );
        let vdd = tech.vdd().as_volts();
        let wakeup_time = Seconds::new(K_WAKE_S / ratio);
        let transition_energy = Joules::new(C_VIRTUAL_F * vdd * vdd * TRANSITION_OVERHEAD);
        let rush_current = Amperes::new(C_VIRTUAL_F * vdd / wakeup_time.as_secs());
        PgCircuitDesign {
            switch_width_ratio: ratio,
            retention: RetentionStyle::Retentive,
            entry_time: Seconds::new(T_ENTRY_S),
            wakeup_time,
            cold_start_time: Seconds::ZERO,
            transition_energy,
            residual_leakage: Ratio::saturating(RESIDUAL_FLOOR + RESIDUAL_SLOPE * ratio),
            area_overhead: Ratio::saturating(AREA_SLOPE * ratio),
            rush_current,
        }
    }

    /// Re-derives the design for a different retention style (see
    /// [`RetentionStyle`]).
    pub fn with_retention(mut self, retention: RetentionStyle) -> Self {
        self.retention = retention;
        match retention {
            RetentionStyle::Retentive => {
                self.entry_time = Seconds::new(T_ENTRY_S);
                self.cold_start_time = Seconds::ZERO;
                self.residual_leakage =
                    Ratio::saturating(RESIDUAL_FLOOR + RESIDUAL_SLOPE * self.switch_width_ratio);
            }
            RetentionStyle::NonRetentive => {
                self.entry_time = Seconds::new(T_ENTRY_S + T_FLUSH_S);
                self.cold_start_time = Seconds::new(T_COLD_START_S);
                self.residual_leakage = Ratio::saturating(
                    RESIDUAL_FLOOR_NON_RETENTIVE + RESIDUAL_SLOPE * self.switch_width_ratio,
                );
            }
        }
        self
    }

    /// The retention style this design point uses.
    pub fn retention(&self) -> RetentionStyle {
        self.retention
    }

    /// Cold-start refill time after a wake (zero for retentive designs).
    pub fn cold_start_time(&self) -> Seconds {
        self.cold_start_time
    }

    /// Cold-start refill in cycles at `clock` (zero for retentive designs).
    pub fn cold_start_cycles(&self, clock: Hertz) -> Cycles {
        if self.cold_start_time.as_secs() == 0.0 {
            Cycles::ZERO
        } else {
            Self::to_cycles(self.cold_start_time, clock)
        }
    }

    /// The MAPG design point: 3 % switches, ≈5 ns wake-up. Fast enough to
    /// hide under a DRAM access, cheap enough to win on stalls of ~50+
    /// cycles.
    pub fn fast_wakeup(tech: &TechnologyParams) -> Self {
        PgCircuitDesign::from_switch_width(0.03, tech)
    }

    /// A conventional low-leakage design: 1 % switches, slow (~15 ns)
    /// wake-up. What pre-MAPG idle-oriented gating would use.
    pub fn conservative(tech: &TechnologyParams) -> Self {
        PgCircuitDesign::from_switch_width(0.01, tech)
    }

    /// An aggressive design: 8 % switches, ~2 ns wake-up, paying residual
    /// leakage and rush current for it.
    pub fn aggressive(tech: &TechnologyParams) -> Self {
        PgCircuitDesign::from_switch_width(0.08, tech)
    }

    /// Evaluates a sweep of width ratios (experiment R-T1).
    pub fn design_space(tech: &TechnologyParams, ratios: &[f64]) -> Vec<PgCircuitDesign> {
        ratios
            .iter()
            .map(|&r| PgCircuitDesign::from_switch_width(r, tech))
            .collect()
    }

    /// The switch width ratio this point was derived from.
    pub fn switch_width_ratio(&self) -> f64 {
        self.switch_width_ratio
    }

    /// Sleep-entry time (isolation + sleep assertion).
    pub fn entry_time(&self) -> Seconds {
        self.entry_time
    }

    /// Wake-up time (virtual-rail recharge to operational voltage).
    pub fn wakeup_time(&self) -> Seconds {
        self.wakeup_time
    }

    /// Sleep-entry latency in cycles at `clock` (rounded up, at least 1).
    pub fn entry_cycles(&self, clock: Hertz) -> Cycles {
        Self::to_cycles(self.entry_time, clock)
    }

    /// Wake-up latency in cycles at `clock` (rounded up, at least 1).
    pub fn wakeup_cycles(&self, clock: Hertz) -> Cycles {
        Self::to_cycles(self.wakeup_time, clock)
    }

    /// Energy dissipated per complete sleep/wake pair.
    pub fn transition_energy(&self) -> Joules {
        self.transition_energy
    }

    /// Fraction of nominal leakage that persists while gated.
    pub fn residual_leakage(&self) -> Ratio {
        self.residual_leakage
    }

    /// Core-area overhead of the switch network.
    pub fn area_overhead(&self) -> Ratio {
        self.area_overhead
    }

    /// Peak inrush current of one core's wake-up. Summed across
    /// simultaneously waking cores, this is what the di/dt (token) budget
    /// constrains.
    pub fn rush_current(&self) -> Amperes {
        self.rush_current
    }

    /// Power drawn while gated (residual leakage).
    pub fn gated_power(&self, tech: &TechnologyParams) -> mapg_units::Watts {
        tech.leakage_power() * self.residual_leakage.value()
    }

    /// The minimum gated duration for a net energy win, in cycles at
    /// `clock`.
    ///
    /// Gating a stall of duration `t` (relative to sitting clock-gated,
    /// which burns full leakage) saves `P_leak·(1−residual)·t` and costs
    /// the transition energy, so the energy break-even is
    /// `t_be = E_trans / (P_leak·(1−residual))`. The mechanism also cannot
    /// profit from stalls shorter than the entry+wake machinery itself, so
    /// the reported break-even is the maximum of the two.
    pub fn break_even_cycles(&self, tech: &TechnologyParams, clock: Hertz) -> Cycles {
        let saved_power = tech.leakage_power() * self.residual_leakage.complement().value();
        let t_energy = Seconds::new(self.transition_energy.as_joules() / saved_power.as_watts());
        let energy_cycles = Self::to_cycles(t_energy, clock);
        let latency_cycles =
            self.entry_cycles(clock) + self.wakeup_cycles(clock) + self.cold_start_cycles(clock);
        energy_cycles.max(latency_cycles)
    }

    fn to_cycles(time: Seconds, clock: Hertz) -> Cycles {
        let cycles = (time.as_secs() * clock.as_hz()).ceil() as u64;
        Cycles::new(cycles.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechnologyParams {
        TechnologyParams::bulk_45nm()
    }

    #[test]
    fn calibration_point_three_percent() {
        let d = PgCircuitDesign::fast_wakeup(&tech());
        assert!((d.wakeup_time().as_nanos() - 5.0).abs() < 1e-9);
        assert_eq!(d.wakeup_cycles(Hertz::from_ghz(2.0)), Cycles::new(10));
        assert_eq!(d.entry_cycles(Hertz::from_ghz(2.0)), Cycles::new(3));
        assert!((d.transition_energy().as_joules() - 6e-9).abs() < 1e-12);
    }

    #[test]
    fn wider_switch_wakes_faster_but_leaks_more() {
        let t = tech();
        let narrow = PgCircuitDesign::conservative(&t);
        let wide = PgCircuitDesign::aggressive(&t);
        assert!(wide.wakeup_time() < narrow.wakeup_time());
        assert!(wide.residual_leakage() > narrow.residual_leakage());
        assert!(wide.rush_current().as_amps() > narrow.rush_current().as_amps());
        assert!(wide.area_overhead() > narrow.area_overhead());
    }

    #[test]
    fn break_even_in_gateable_range() {
        let t = tech();
        let clock = Hertz::from_ghz(2.0);
        let bet = PgCircuitDesign::fast_wakeup(&t).break_even_cycles(&t, clock);
        // Must be far below a ~150-cycle DRAM stall, far above trivial.
        assert!(bet.raw() > 10, "break-even {bet} suspiciously short");
        assert!(bet.raw() < 150, "break-even {bet} too long");
    }

    #[test]
    fn break_even_floor_is_transition_latency() {
        // With a huge leakage budget the energy term shrinks below the
        // latency floor; the floor must win.
        let t = tech().with_total_power(mapg_units::Watts::new(50.0));
        let clock = Hertz::from_ghz(2.0);
        let d = PgCircuitDesign::fast_wakeup(&t);
        let bet = d.break_even_cycles(&t, clock);
        assert_eq!(bet, d.entry_cycles(clock) + d.wakeup_cycles(clock));
    }

    #[test]
    fn break_even_shrinks_with_leakage_fraction() {
        let clock = Hertz::from_ghz(2.0);
        let lo = tech().with_leakage_fraction(0.15);
        let hi = tech().with_leakage_fraction(0.6);
        let bet_lo = PgCircuitDesign::fast_wakeup(&lo).break_even_cycles(&lo, clock);
        let bet_hi = PgCircuitDesign::fast_wakeup(&hi).break_even_cycles(&hi, clock);
        assert!(
            bet_hi < bet_lo,
            "more leakage ⇒ faster amortization: {bet_hi} !< {bet_lo}"
        );
    }

    #[test]
    fn gated_power_is_residual_leakage() {
        let t = tech();
        let d = PgCircuitDesign::fast_wakeup(&t);
        let expected = t.leakage_power().as_watts() * d.residual_leakage().value();
        assert!((d.gated_power(&t).as_watts() - expected).abs() < 1e-12);
        assert!(d.gated_power(&t) < t.leakage_power());
    }

    #[test]
    fn design_space_is_ordered() {
        let t = tech();
        let space = PgCircuitDesign::design_space(&t, &[0.01, 0.02, 0.04, 0.08]);
        assert_eq!(space.len(), 4);
        for pair in space.windows(2) {
            assert!(pair[0].wakeup_time() > pair[1].wakeup_time());
            assert!(pair[0].residual_leakage() < pair[1].residual_leakage());
        }
    }

    #[test]
    #[should_panic(expected = "switch width ratio")]
    fn rejects_undersized_switch() {
        let _ = PgCircuitDesign::from_switch_width(0.001, &tech());
    }

    #[test]
    #[should_panic(expected = "switch width ratio")]
    fn rejects_oversized_switch() {
        let _ = PgCircuitDesign::from_switch_width(0.5, &tech());
    }

    #[test]
    fn cycle_conversion_rounds_up_with_floor() {
        let t = tech();
        let d = PgCircuitDesign::fast_wakeup(&t);
        // At a very slow clock the latencies collapse to the 1-cycle floor.
        let slow = Hertz::from_mhz(1.0);
        assert_eq!(d.entry_cycles(slow), Cycles::new(1));
        assert_eq!(d.wakeup_cycles(slow), Cycles::new(1));
    }

    #[test]
    fn rush_current_matches_cv_over_t() {
        let t = tech();
        let d = PgCircuitDesign::fast_wakeup(&t);
        let expected = 5e-9 * 1.0 / d.wakeup_time().as_secs();
        assert!((d.rush_current().as_amps() - expected).abs() < 1e-9);
    }
}
