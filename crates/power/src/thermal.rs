//! Leakage–temperature feedback.
//!
//! Leakage current grows roughly linearly-to-exponentially with die
//! temperature, and die temperature grows with dissipated power: a positive
//! feedback loop. A policy that removes leakage (gating) therefore earns a
//! *second-order* bonus — the cooler die leaks less even while active. This
//! module provides the steady-state solver used by experiment R-F13.
//!
//! Model: a lumped thermal resistance `R` (°C/W) from junction to ambient
//! and a linear leakage-temperature coefficient `k` (fraction per °C)
//! around a reference temperature `T_ref`:
//!
//! ```text
//! T  = T_amb + R · (P_dyn + P_leak(T))
//! P_leak(T) = P_leak_ref · (1 + k · (T − T_ref))
//! ```
//!
//! which is linear in `T` and solved in closed form. A denominator
//! `1 − R·P_leak_ref·k ≤ 0` means thermal runaway (the feedback gain
//! exceeds unity); the solver reports it as an error rather than returning
//! a nonsensical temperature.

use core::fmt;

use mapg_units::Watts;

/// Lumped thermal parameters of one core + package path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Ambient (heatsink inlet) temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C/W.
    pub resistance_c_per_w: f64,
    /// Fractional leakage increase per °C above the reference.
    pub leakage_per_c: f64,
    /// Temperature at which the technology's leakage numbers were
    /// characterized, °C.
    pub reference_c: f64,
}

impl ThermalParams {
    /// Embedded-class defaults: 45 °C ambient, 12 °C/W to ambient,
    /// +1.2 %/°C leakage, characterized at 85 °C.
    pub fn embedded() -> Self {
        ThermalParams {
            ambient_c: 45.0,
            resistance_c_per_w: 12.0,
            leakage_per_c: 0.012,
            reference_c: 85.0,
        }
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams::embedded()
    }
}

/// The solved steady state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalOperatingPoint {
    /// Steady-state junction temperature, °C.
    pub temperature_c: f64,
    /// Multiplier on the reference leakage at that temperature.
    pub leakage_scale: f64,
    /// Total dissipated power including the thermally scaled leakage.
    pub total_power: Watts,
}

/// Error: the leakage-temperature feedback gain is ≥ 1 and no steady state
/// exists below meltdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThermalRunawayError;

impl fmt::Display for ThermalRunawayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thermal runaway: leakage-temperature feedback gain >= 1")
    }
}

impl std::error::Error for ThermalRunawayError {}

impl ThermalParams {
    /// Solves the steady state for a core dissipating `dynamic` watts of
    /// temperature-independent power and `leakage_ref` watts of leakage at
    /// the reference temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalRunawayError`] when `R·P_leak_ref·k ≥ 1`.
    ///
    /// ```
    /// use mapg_power::ThermalParams;
    /// use mapg_units::Watts;
    ///
    /// let thermal = ThermalParams::embedded();
    /// let point = thermal
    ///     .steady_state(Watts::new(0.7), Watts::new(0.3))
    ///     .expect("well within stability");
    /// assert!(point.temperature_c > 45.0);
    /// ```
    pub fn steady_state(
        &self,
        dynamic: Watts,
        leakage_ref: Watts,
    ) -> Result<ThermalOperatingPoint, ThermalRunawayError> {
        let r = self.resistance_c_per_w;
        let k = self.leakage_per_c;
        let pl = leakage_ref.as_watts();
        let pd = dynamic.as_watts();
        let gain = r * pl * k;
        if gain >= 1.0 {
            return Err(ThermalRunawayError);
        }
        // T = Ta + R·(Pd + Pl·(1 + k·(T − Tr)))
        //   ⇒ T·(1 − R·Pl·k) = Ta + R·(Pd + Pl·(1 − k·Tr))
        let temperature_c =
            (self.ambient_c + r * (pd + pl * (1.0 - k * self.reference_c))) / (1.0 - gain);
        let leakage_scale = 1.0 + k * (temperature_c - self.reference_c);
        // Leakage cannot go negative however cold the die runs.
        let leakage_scale = leakage_scale.max(0.0);
        let total_power = Watts::new(pd + pl * leakage_scale);
        Ok(ThermalOperatingPoint {
            temperature_c,
            leakage_scale,
            total_power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_self_consistent() {
        let thermal = ThermalParams::embedded();
        let point = thermal
            .steady_state(Watts::new(0.7), Watts::new(0.3))
            .expect("stable");
        // Plug the solution back into the fixed-point equation.
        let recomputed =
            thermal.ambient_c + thermal.resistance_c_per_w * point.total_power.as_watts();
        assert!(
            (recomputed - point.temperature_c).abs() < 1e-9,
            "{recomputed} != {}",
            point.temperature_c
        );
    }

    #[test]
    fn cooler_dies_leak_less() {
        let thermal = ThermalParams::embedded();
        let hot = thermal
            .steady_state(Watts::new(0.7), Watts::new(0.3))
            .expect("stable");
        // Gated core: same reference leakage characteristics, far less
        // average dissipation.
        let cool = thermal
            .steady_state(Watts::new(0.3), Watts::new(0.1))
            .expect("stable");
        assert!(cool.temperature_c < hot.temperature_c);
        assert!(cool.leakage_scale < hot.leakage_scale);
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let thermal = ThermalParams::embedded();
        let point = thermal
            .steady_state(Watts::ZERO, Watts::ZERO)
            .expect("trivially stable");
        assert!((point.temperature_c - thermal.ambient_c).abs() < 1e-9);
        assert_eq!(point.total_power, Watts::ZERO);
    }

    #[test]
    fn runaway_is_detected() {
        let thermal = ThermalParams {
            resistance_c_per_w: 100.0,
            leakage_per_c: 0.05,
            ..ThermalParams::embedded()
        };
        // R·Pl·k = 100 × 0.3 × 0.05 = 1.5 ≥ 1.
        let result = thermal.steady_state(Watts::new(0.7), Watts::new(0.3));
        assert_eq!(result, Err(ThermalRunawayError));
        assert!(ThermalRunawayError.to_string().contains("runaway"));
    }

    #[test]
    fn leakage_scale_floors_at_zero() {
        // An extremely cold-running configuration: tiny power, ambient far
        // below reference.
        let thermal = ThermalParams {
            ambient_c: -100.0,
            leakage_per_c: 0.02,
            ..ThermalParams::embedded()
        };
        let point = thermal
            .steady_state(Watts::new(0.01), Watts::new(0.01))
            .expect("stable");
        assert!(point.leakage_scale >= 0.0);
    }

    #[test]
    fn temperature_rises_with_power() {
        let thermal = ThermalParams::embedded();
        let low = thermal
            .steady_state(Watts::new(0.2), Watts::new(0.1))
            .expect("stable");
        let high = thermal
            .steady_state(Watts::new(1.4), Watts::new(0.1))
            .expect("stable");
        assert!(high.temperature_c > low.temperature_c + 5.0);
    }
}
