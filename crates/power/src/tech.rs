//! Technology parameters: the per-core power budget and its split.

use mapg_units::{Hertz, Ratio, Volts, Watts};

/// Per-core power characteristics at the nominal operating point.
///
/// The defaults describe a 45 nm-class embedded out-of-order core at
/// 1.0 V / 2 GHz with a ~1 W budget, 30 % of it leakage — the regime the
/// original evaluation targets (leakage large enough to be worth gating,
/// not yet FinFET-suppressed). [`TechnologyParams::with_leakage_fraction`]
/// re-splits the same total budget to emulate technology scaling
/// (experiment R-F9).
///
/// ```
/// use mapg_power::TechnologyParams;
///
/// let tech = TechnologyParams::bulk_45nm();
/// assert!((tech.leakage_fraction().value() - 0.3).abs() < 1e-9);
///
/// let leaky = tech.with_leakage_fraction(0.5);
/// assert_eq!(leaky.total_power(), tech.total_power());
/// assert!(leaky.leakage_power() > tech.leakage_power());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    vdd: Volts,
    nominal_clock: Hertz,
    dynamic_power: Watts,
    leakage_power: Watts,
    idle_dynamic_fraction: Ratio,
}

impl TechnologyParams {
    /// 45 nm bulk CMOS defaults: 1.0 V, 2 GHz, 0.7 W dynamic + 0.3 W
    /// leakage, 25 % of dynamic power persisting while stalled but clocked
    /// (clock tree + control).
    pub fn bulk_45nm() -> Self {
        TechnologyParams {
            vdd: Volts::new(1.0),
            nominal_clock: Hertz::from_ghz(2.0),
            dynamic_power: Watts::new(0.7),
            leakage_power: Watts::new(0.3),
            idle_dynamic_fraction: Ratio::new(0.25),
        }
    }

    /// Nominal supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Nominal clock frequency.
    pub fn nominal_clock(&self) -> Hertz {
        self.nominal_clock
    }

    /// Dynamic power when actively executing at nominal V/f.
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic_power
    }

    /// Leakage power at nominal voltage (state-independent).
    pub fn leakage_power(&self) -> Watts {
        self.leakage_power
    }

    /// Total (dynamic + leakage) power when active.
    pub fn total_power(&self) -> Watts {
        self.dynamic_power + self.leakage_power
    }

    /// Leakage's share of total power.
    pub fn leakage_fraction(&self) -> Ratio {
        Ratio::saturating(self.leakage_power / self.total_power())
    }

    /// Dynamic power that persists while the core is stalled but still
    /// clocked (clock tree, always-on control). Clock gating removes this;
    /// leakage remains.
    pub fn idle_dynamic_power(&self) -> Watts {
        self.dynamic_power * self.idle_dynamic_fraction.value()
    }

    /// Returns a copy with the same total budget re-split so leakage is
    /// `fraction` of the total. This is the technology-scaling knob:
    /// at 32/22 nm planar, leakage fractions of 40–60 % were projected.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn with_leakage_fraction(&self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "leakage fraction must be in (0, 1), got {fraction}"
        );
        let total = self.total_power();
        TechnologyParams {
            leakage_power: total * fraction,
            dynamic_power: total * (1.0 - fraction),
            ..*self
        }
    }

    /// Returns a copy with a different total budget, preserving the split.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not positive.
    pub fn with_total_power(&self, total: Watts) -> Self {
        assert!(total.as_watts() > 0.0, "total power must be positive");
        let leak = self.leakage_fraction().value();
        TechnologyParams {
            leakage_power: total * leak,
            dynamic_power: total * (1.0 - leak),
            ..*self
        }
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        TechnologyParams::bulk_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_splits() {
        let t = TechnologyParams::bulk_45nm();
        assert_eq!(t.total_power(), Watts::new(1.0));
        assert_eq!(t.dynamic_power(), Watts::new(0.7));
        assert_eq!(t.leakage_power(), Watts::new(0.3));
        assert!((t.idle_dynamic_power().as_watts() - 0.175).abs() < 1e-12);
        assert_eq!(t.vdd(), Volts::new(1.0));
        assert_eq!(t.nominal_clock(), Hertz::from_ghz(2.0));
    }

    #[test]
    fn leakage_resplit_preserves_total() {
        let t = TechnologyParams::bulk_45nm();
        for fraction in [0.1, 0.3, 0.5, 0.6] {
            let scaled = t.with_leakage_fraction(fraction);
            assert!((scaled.total_power() / t.total_power() - 1.0).abs() < 1e-12);
            assert!((scaled.leakage_fraction().value() - fraction).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "leakage fraction")]
    fn rejects_degenerate_fraction() {
        let _ = TechnologyParams::bulk_45nm().with_leakage_fraction(1.0);
    }

    #[test]
    fn total_rescale_preserves_split() {
        let t = TechnologyParams::bulk_45nm();
        let double = t.with_total_power(Watts::new(2.0));
        assert_eq!(double.total_power(), Watts::new(2.0));
        assert!((double.leakage_fraction().value() - t.leakage_fraction().value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "total power")]
    fn rejects_zero_total() {
        let _ = TechnologyParams::bulk_45nm().with_total_power(Watts::ZERO);
    }
}
