//! Property tests: algebraic laws of the quantity types.

use proptest::prelude::*;

use mapg_units::{Cycle, Cycles, Hertz, Joules, Ratio, Seconds, Watts};

proptest! {
    #[test]
    fn cycle_timestamp_algebra(base in 0u64..1 << 40, d1 in 0u64..1 << 20, d2 in 0u64..1 << 20) {
        let t = Cycle::new(base);
        let a = Cycles::new(d1);
        let b = Cycles::new(d2);
        // (t + a) + b == (t + b) + a (commutative shifts)
        prop_assert_eq!((t + a) + b, (t + b) + a);
        // (t + a) - t == a
        prop_assert_eq!((t + a) - t, a);
        // saturating_since is zero in the other direction
        prop_assert_eq!(t.saturating_since(t + a + Cycles::new(1)), Cycles::ZERO);
    }

    #[test]
    fn duration_scale_bounds(raw in 0u64..1 << 30, factor in 0.0f64..8.0) {
        let scaled = Cycles::new(raw).scale(factor);
        let exact = raw as f64 * factor;
        prop_assert!((scaled.raw() as f64 - exact).abs() <= 0.5 + 1e-6);
    }

    #[test]
    fn power_time_energy_consistency(p in 0.0f64..100.0, t in 1e-12f64..10.0) {
        let power = Watts::new(p);
        let time = Seconds::new(t);
        let energy = power * time;
        // E / t == p within floating error.
        prop_assert!(((energy / time).as_watts() - p).abs() < 1e-9 * p.max(1.0));
        prop_assert!(energy.as_joules() >= 0.0);
    }

    #[test]
    fn cycles_at_frequency_round_trip(cycles in 1u64..1 << 30, ghz in 0.1f64..5.0) {
        let clock = Hertz::from_ghz(ghz);
        let time = Cycles::new(cycles).at(clock);
        let back = time.as_secs() * clock.as_hz();
        prop_assert!((back - cycles as f64).abs() < 1e-3);
    }

    #[test]
    fn ratio_complement_involution(value in 0.0f64..=1.0) {
        let r = Ratio::saturating(value);
        let twice = r.complement().complement();
        prop_assert!((twice.value() - r.value()).abs() < 1e-12);
        prop_assert!(r.value() + r.complement().value() <= 1.0 + 1e-12);
    }

    #[test]
    fn energy_sums_are_order_independent(values in prop::collection::vec(0.0f64..1e3, 1..50)) {
        let forward: Joules = values.iter().map(|&v| Joules::new(v)).sum();
        let mut reversed = values.clone();
        reversed.reverse();
        let backward: Joules = reversed.iter().map(|&v| Joules::new(v)).sum();
        prop_assert!((forward.as_joules() - backward.as_joules()).abs() < 1e-9);
    }
}
