//! Time, frequency, power and energy quantities.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// Engineering-notation formatting shared by the f64-backed quantities.
fn fmt_eng(value: f64, unit: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let (scaled, prefix) = match value.abs() {
        0.0 => (value, ""),
        v if v >= 1e9 => (value / 1e9, "G"),
        v if v >= 1e6 => (value / 1e6, "M"),
        v if v >= 1e3 => (value / 1e3, "k"),
        v if v >= 1.0 => (value, ""),
        v if v >= 1e-3 => (value * 1e3, "m"),
        v if v >= 1e-6 => (value * 1e6, "u"),
        v if v >= 1e-9 => (value * 1e9, "n"),
        v if v >= 1e-12 => (value * 1e12, "p"),
        _ => (value * 1e15, "f"),
    };
    write!(f, "{scaled:.3} {prefix}{unit}")
}

macro_rules! f64_quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal, $as_fn:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates the quantity from a raw value in base SI units.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN (quantities must stay totally
            /// comparable so simulation reports can be sorted and summed).
            #[inline]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                $name(value)
            }

            /// Returns the raw value in base SI units.
            #[inline]
            pub const fn $as_fn(self) -> f64 {
                self.0
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_eng(self.0, $unit, f)
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            /// Dimensionless ratio of two quantities.
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }
    };
}

f64_quantity!(
    /// A duration in seconds.
    ///
    /// ```
    /// use mapg_units::Seconds;
    /// let t = Seconds::from_nanos(250.0);
    /// assert!((t.as_secs() - 2.5e-7).abs() < 1e-18);
    /// ```
    Seconds,
    "s",
    as_secs
);

f64_quantity!(
    /// An amount of energy in joules.
    ///
    /// ```
    /// use mapg_units::{Joules, Seconds, Watts};
    /// let e = Watts::new(2.0) * Seconds::new(3.0);
    /// assert_eq!(e, Joules::new(6.0));
    /// ```
    Joules,
    "J",
    as_joules
);

f64_quantity!(
    /// A power draw in watts.
    ///
    /// ```
    /// use mapg_units::{Joules, Seconds, Watts};
    /// let p = Joules::new(6.0) / Seconds::new(3.0);
    /// assert_eq!(p, Watts::new(2.0));
    /// ```
    Watts,
    "W",
    as_watts
);

f64_quantity!(
    /// A frequency in hertz.
    ///
    /// ```
    /// use mapg_units::Hertz;
    /// assert_eq!(Hertz::from_ghz(2.0).as_hz(), 2e9);
    /// ```
    Hertz,
    "Hz",
    as_hz
);

impl Seconds {
    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Seconds::new(ns * 1e-9)
    }

    /// This duration expressed in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.as_secs() * 1e9
    }
}

impl Hertz {
    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz::new(mhz * 1e6)
    }

    /// The period of one clock cycle at this frequency.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.as_hz())
    }
}

impl Joules {
    /// Creates an energy from picojoules (the natural scale of per-event
    /// energies in a core).
    #[inline]
    pub fn from_picojoules(pj: f64) -> Self {
        Joules::new(pj * 1e-12)
    }

    /// This energy expressed in millijoules.
    #[inline]
    pub fn as_millijoules(self) -> f64 {
        self.as_joules() * 1e3
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Watts::new(mw * 1e-3)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Power sustained over a duration yields energy.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.as_watts() * rhs.as_secs())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Energy over a duration yields average power.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.as_joules() / rhs.as_secs())
    }
}

impl Mul<Seconds> for Joules {
    type Output = f64;
    /// Energy-delay product, in joule-seconds. Returned as a bare `f64`
    /// because J·s has no further algebra in this workspace.
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.as_joules() * rhs.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_time_energy_triangle() {
        let p = Watts::new(0.5);
        let t = Seconds::new(4.0);
        let e = p * t;
        assert_eq!(e, Joules::new(2.0));
        assert_eq!(e / t, p);
        assert_eq!(t * p, e);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Hertz::from_ghz(2.5);
        assert!((f.period().as_secs() - 0.4e-9).abs() < 1e-21);
        assert_eq!(Hertz::from_mhz(2500.0), f);
    }

    #[test]
    fn engineering_display() {
        assert_eq!(Watts::new(0.035).to_string(), "35.000 mW");
        assert_eq!(Joules::from_picojoules(12.0).to_string(), "12.000 pJ");
        assert_eq!(Hertz::from_ghz(2.0).to_string(), "2.000 GHz");
        assert_eq!(Seconds::new(0.0).to_string(), "0.000 s");
    }

    #[test]
    fn scalar_algebra() {
        let w = Watts::new(2.0);
        assert_eq!(w * 2.0, Watts::new(4.0));
        assert_eq!(2.0 * w, Watts::new(4.0));
        assert_eq!(w / 2.0, Watts::new(1.0));
        assert!((w / Watts::new(0.5) - 4.0).abs() < 1e-12);
        assert_eq!(w + w - w, w);
    }

    #[test]
    fn sums_and_extremes() {
        let total: Joules = [1.0, 2.0, 3.0].into_iter().map(Joules::new).sum();
        assert_eq!(total, Joules::new(6.0));
        assert_eq!(Watts::new(1.0).max(Watts::new(2.0)), Watts::new(2.0));
        assert_eq!(Watts::new(1.0).min(Watts::new(2.0)), Watts::new(1.0));
    }

    #[test]
    fn edp_is_scalar() {
        let edp = Joules::new(2.0) * Seconds::new(3.0);
        assert!((edp - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Watts::new(f64::NAN);
    }

    #[test]
    fn unit_helpers() {
        assert!((Seconds::from_nanos(5.0).as_nanos() - 5.0).abs() < 1e-12);
        assert!((Joules::new(0.004).as_millijoules() - 4.0).abs() < 1e-12);
        assert_eq!(Watts::from_milliwatts(250.0), Watts::new(0.25));
    }
}
