//! Cycle-domain quantities: absolute timestamps and durations in core clock
//! cycles.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use crate::energy::{Hertz, Seconds};

/// An absolute point on a core's cycle timeline.
///
/// `Cycle` is a *timestamp*; [`Cycles`] is a *duration*. The arithmetic is
/// restricted accordingly: two timestamps can be subtracted (yielding a
/// duration), a duration can be added to a timestamp, but timestamps cannot
/// be added to each other.
///
/// ```
/// use mapg_units::{Cycle, Cycles};
///
/// let start = Cycle::new(100);
/// let end = start + Cycles::new(42);
/// assert_eq!(end - start, Cycles::new(42));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The origin of the timeline (cycle zero).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp at the given raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Duration elapsed from `earlier` to `self`, saturating to zero when
    /// `earlier` is actually later (useful when comparing speculative
    /// schedules that may have already been overtaken).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;

    /// Duration from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycles {
        debug_assert!(
            self.0 >= rhs.0,
            "timestamp subtraction underflow: {self} - {rhs}"
        );
        Cycles(self.0 - rhs.0)
    }
}

impl Sub<Cycles> for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

/// A duration measured in core clock cycles.
///
/// ```
/// use mapg_units::{Cycles, Hertz};
///
/// let wakeup = Cycles::new(10);
/// let at_2ghz = wakeup.at(Hertz::from_ghz(2.0));
/// assert!((at_2ghz.as_secs() - 5e-9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration of `raw` cycles.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts this cycle-domain duration into wall-clock time at the given
    /// clock frequency.
    #[inline]
    pub fn at(self, clock: Hertz) -> Seconds {
        Seconds::new(self.0 as f64 / clock.as_hz())
    }

    /// Duration minus `rhs`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a floating-point factor, rounding to the
    /// nearest cycle. Used by sensitivity sweeps (e.g. "1.5× DRAM latency").
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> Cycles {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Cycles((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    #[inline]
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    #[inline]
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "duration subtraction underflow");
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Mul<Cycles> for u64 {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: Cycles) -> Cycles {
        Cycles(self * rhs.0)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Div<Cycles> for Cycles {
    type Output = f64;
    /// Ratio of two durations (dimensionless).
    #[inline]
    fn div(self, rhs: Cycles) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Rem<Cycles> for Cycles {
    type Output = Cycles;
    #[inline]
    fn rem(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 % rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_duration_algebra() {
        let t0 = Cycle::new(10);
        let t1 = t0 + Cycles::new(5);
        assert_eq!(t1.raw(), 15);
        assert_eq!(t1 - t0, Cycles::new(5));
        assert_eq!(t0.saturating_since(t1), Cycles::ZERO);
        assert_eq!(t1.saturating_since(t0), Cycles::new(5));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(3 * a, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(a % Cycles::new(30), Cycles::new(10));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn duration_scale_rounds() {
        assert_eq!(Cycles::new(10).scale(1.5), Cycles::new(15));
        assert_eq!(Cycles::new(3).scale(0.5), Cycles::new(2)); // 1.5 rounds to 2
        assert_eq!(Cycles::new(7).scale(0.0), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn duration_scale_rejects_negative() {
        let _ = Cycles::new(1).scale(-1.0);
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Cycles::new(3).max(Cycles::new(7)), Cycles::new(7));
        assert_eq!(Cycles::new(3).min(Cycles::new(7)), Cycles::new(3));
        assert_eq!(Cycle::new(3).max(Cycle::new(7)), Cycle::new(7));
        assert_eq!(Cycle::new(3).min(Cycle::new(7)), Cycle::new(3));
    }

    #[test]
    fn sum_of_durations() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle::new(42).to_string(), "@42");
        assert_eq!(Cycles::new(42).to_string(), "42 cyc");
    }

    #[test]
    fn conversion_to_time() {
        let c = Cycles::new(2_000);
        let s = c.at(Hertz::from_ghz(2.0));
        assert!((s.as_secs() - 1e-6).abs() < 1e-15);
    }
}
