//! A validated dimensionless fraction in `[0, 1]`.

use core::fmt;
use core::ops::Mul;

/// A dimensionless fraction guaranteed to lie in `[0.0, 1.0]`.
///
/// Residual-leakage fractions, miss rates, duty cycles and the like are all
/// fractions; validating the range once at construction time removes a whole
/// class of "entered 35 instead of 0.35" configuration bugs.
///
/// ```
/// use mapg_units::Ratio;
///
/// let residual = Ratio::new(0.04); // 4 % leakage remains while gated
/// assert_eq!(residual.value(), 0.04);
/// assert_eq!(residual.complement().value(), 0.96);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero fraction.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit fraction.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0.0, 1.0]` or not finite.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "ratio must be in [0, 1], got {value}"
        );
        Ratio(value)
    }

    /// Creates a ratio, clamping out-of-range values instead of panicking.
    /// Useful when the value comes from measured statistics that may carry
    /// floating-point dust slightly outside the range.
    #[inline]
    pub fn saturating(value: f64) -> Self {
        Ratio(value.clamp(0.0, 1.0))
    }

    /// The raw fraction.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// `1 - self`.
    #[inline]
    pub fn complement(self) -> Ratio {
        Ratio(1.0 - self.0)
    }

    /// This fraction as a percentage (`0.35` → `35.0`).
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

impl Mul<f64> for Ratio {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Mul<Ratio> for Ratio {
    type Output = Ratio;
    /// Product of two fractions is a fraction.
    #[inline]
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_complement() {
        let r = Ratio::new(0.25);
        assert_eq!(r.value(), 0.25);
        assert_eq!(r.complement(), Ratio::new(0.75));
        assert_eq!(r.as_percent(), 25.0);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn rejects_out_of_range() {
        let _ = Ratio::new(1.5);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn rejects_negative() {
        let _ = Ratio::new(-0.1);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Ratio::saturating(1.0000001), Ratio::ONE);
        assert_eq!(Ratio::saturating(-0.5), Ratio::ZERO);
        assert_eq!(Ratio::saturating(0.5), Ratio::new(0.5));
    }

    #[test]
    fn products() {
        assert_eq!(Ratio::new(0.5) * Ratio::new(0.5), Ratio::new(0.25));
        assert!((Ratio::new(0.5) * 10.0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_percent() {
        assert_eq!(Ratio::new(0.345).to_string(), "34.5%");
    }
}
