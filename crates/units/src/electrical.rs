//! Electrical quantities used by the power-gating circuit model.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};

use crate::energy::Watts;

/// A voltage in volts.
///
/// ```
/// use mapg_units::{Amperes, Volts};
/// let p = Volts::new(0.9) * Amperes::new(2.0);
/// assert_eq!(p.as_watts(), 1.8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Volts(f64);

impl Volts {
    /// Zero volts.
    pub const ZERO: Volts = Volts(0.0);

    /// Creates a voltage.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "Volts cannot be NaN");
        Volts(value)
    }

    /// Returns the raw value in volts.
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

impl Add for Volts {
    type Output = Volts;
    #[inline]
    fn add(self, rhs: Volts) -> Volts {
        Volts(self.0 + rhs.0)
    }
}

impl Sub for Volts {
    type Output = Volts;
    #[inline]
    fn sub(self, rhs: Volts) -> Volts {
        Volts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Volts {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: f64) -> Volts {
        Volts(self.0 * rhs)
    }
}

impl Div<Volts> for Volts {
    type Output = f64;
    /// Dimensionless voltage ratio (e.g. V/V_nominal scaling factors).
    #[inline]
    fn div(self, rhs: Volts) -> f64 {
        self.0 / rhs.0
    }
}

/// A current in amperes.
///
/// Used for the rush-current (di/dt) budget of the sleep-transistor network.
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Amperes(f64);

impl Amperes {
    /// Zero amperes.
    pub const ZERO: Amperes = Amperes(0.0);

    /// Creates a current.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "Amperes cannot be NaN");
        Amperes(value)
    }

    /// Returns the raw value in amperes.
    #[inline]
    pub const fn as_amps(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Amperes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() < 1.0 {
            write!(f, "{:.1} mA", self.0 * 1e3)
        } else {
            write!(f, "{:.3} A", self.0)
        }
    }
}

impl Add for Amperes {
    type Output = Amperes;
    #[inline]
    fn add(self, rhs: Amperes) -> Amperes {
        Amperes(self.0 + rhs.0)
    }
}

impl Mul<f64> for Amperes {
    type Output = Amperes;
    #[inline]
    fn mul(self, rhs: f64) -> Amperes {
        Amperes(self.0 * rhs)
    }
}

impl Mul<Amperes> for Volts {
    type Output = Watts;
    /// Voltage times current yields power.
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts::new(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Volts> for Watts {
    type Output = Amperes;
    /// Power at a voltage implies current.
    #[inline]
    fn div(self, rhs: Volts) -> Amperes {
        Amperes::new(self.as_watts() / rhs.as_volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_triangle() {
        let v = Volts::new(1.1);
        let i = Amperes::new(0.5);
        let p = v * i;
        assert!((p.as_watts() - 0.55).abs() < 1e-12);
        assert!(((p / v).as_amps() - 0.5).abs() < 1e-12);
        assert_eq!(i * v, p);
    }

    #[test]
    fn voltage_arithmetic() {
        let v = Volts::new(1.0);
        assert_eq!(v + v, Volts::new(2.0));
        assert_eq!(v - Volts::new(0.25), Volts::new(0.75));
        assert_eq!(v * 0.5, Volts::new(0.5));
        assert!((Volts::new(0.9) / Volts::new(1.2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn current_display_scales() {
        assert_eq!(Amperes::new(0.012).to_string(), "12.0 mA");
        assert_eq!(Amperes::new(2.5).to_string(), "2.500 A");
        assert_eq!(Volts::new(0.85).to_string(), "0.850 V");
    }

    #[test]
    fn current_arithmetic() {
        assert_eq!(Amperes::new(1.0) + Amperes::new(0.5), Amperes::new(1.5));
        assert_eq!(Amperes::new(2.0) * 3.0, Amperes::new(6.0));
    }
}
