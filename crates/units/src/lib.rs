//! Strongly-typed physical quantities for the MAPG reproduction.
//!
//! Power-gating analysis constantly mixes quantities measured in core cycles
//! (stall durations, break-even times, wakeup latencies) with quantities
//! measured in physical units (leakage watts, transition joules, supply
//! volts). Mixing those up is exactly the kind of catastrophic-but-silent bug
//! a reproduction cannot afford, so every quantity gets a newtype
//! ([C-NEWTYPE]) and the conversions between the cycle domain and the time
//! domain are explicit and always go through a [`Hertz`] clock frequency.
//!
//! # Example
//!
//! ```
//! use mapg_units::{Cycles, Hertz, Watts};
//!
//! let clock = Hertz::from_ghz(2.0);
//! let stall = Cycles::new(400);
//! let leakage = Watts::new(0.35);
//!
//! // Energy wasted leaking through a 400-cycle stall at 2 GHz:
//! let wasted = leakage * stall.at(clock);
//! assert!((wasted.as_joules() - 0.35 * 200e-9).abs() < 1e-18);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycles;
mod electrical;
mod energy;
mod ratio;

pub use cycles::{Cycle, Cycles};
pub use electrical::{Amperes, Volts};
pub use energy::{Hertz, Joules, Seconds, Watts};
pub use ratio::Ratio;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_round_trip() {
        let clock = Hertz::from_ghz(1.0);
        let c = Cycles::new(1_000_000_000);
        assert!((c.at(clock).as_secs() - 1.0).abs() < 1e-12);
    }
}
