//! Vendored work-sharing thread pool for the MAPG workspace.
//!
//! The build environment has no registry access, so instead of `rayon` the
//! workspace vendors this std-only pool covering exactly what the
//! simulation harness needs:
//!
//! - [`Pool::map`] — an **ordered** parallel map: results come back in
//!   submission order regardless of completion order, so seeded
//!   (deterministic) runs produce bit-identical output at any job count;
//! - **scoped workers** — workers borrow from the caller's stack via
//!   [`std::thread::scope`], no `'static` bounds on items or closures;
//! - **work sharing** — workers pull the next item index from a shared
//!   atomic counter, so an uneven matrix (one slow simulation, many fast
//!   ones) still keeps every worker busy;
//! - **panic propagation** — the first worker panic cancels remaining
//!   items and is re-raised on the calling thread with its original
//!   payload;
//! - a **degenerate serial path** — `jobs == 1` (or a single item) runs
//!   inline on the caller with no threads spawned, which is the baseline
//!   the determinism tests compare against;
//! - a **persistent scoped pool** — [`Pool::scoped`] spawns the workers
//!   once and lets the caller dispatch many ordered [`ScopedPool::map`]
//!   batches against them, so per-epoch drivers (the sharded cluster
//!   engine) stop paying thread spawn/teardown on every segment;
//! - a **supervised mode** — [`Supervisor::map_supervised`] layers
//!   hierarchical cancellation ([`CancelToken`]), per-job wall-clock
//!   deadlines (a monitor thread), panic quarantine (per-job
//!   [`JobOutcome`]s instead of batch aborts), and bounded
//!   retry-with-backoff on top, for long campaigns where one bad job
//!   must not take down the suite.
//!
//! ```
//! use mapg_pool::Pool;
//!
//! let squares = Pool::new(4).map((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! # Default job count
//!
//! [`default_jobs`] resolves to [`std::thread::available_parallelism`],
//! overridable per-thread with [`with_default_jobs`] so a harness (or a
//! test) can pin the whole call tree beneath it — e.g. the `experiments`
//! binary pins each experiment's inner [`SuiteRunner`] fan-out to the
//! `--jobs` value, and the determinism tests pin `1` vs `N` without
//! touching process-global state.
//!
//! [`SuiteRunner`]: https://docs.rs/mapg

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fair;
mod supervise;

pub use fair::{ClientStats, Dispatch, FairQueue, Priority};
pub use supervise::{
    CancelToken, JobCtx, JobFailure, JobOutcome, JobReport, Supervisor, POLL_INTERVAL,
};

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

thread_local! {
    static DEFAULT_JOBS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The job count [`Pool::with_default_jobs`] uses: the innermost active
/// [`with_default_jobs`] override on this thread, else the
/// `MAPG_JOBS` environment variable (see [`env_jobs`]), else
/// [`std::thread::available_parallelism`] (1 if that is unavailable).
pub fn default_jobs() -> usize {
    DEFAULT_JOBS.with(|cell| match cell.get() {
        Some(jobs) => jobs,
        None => env_jobs().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
    })
}

/// The process-wide worker budget from the `MAPG_JOBS` environment
/// variable, if set to a positive integer (read once, then cached).
///
/// This is how a scheduler that spawns worker *processes* (a CI runner,
/// an operator wrapping `mapgsim`/`experiments` under a job manager)
/// threads a worker budget into every pool in the child's process tree
/// without touching each call site; `mapgd` grants the same per-job
/// budget in-process via [`with_default_jobs`]. Unparseable or zero
/// values are ignored.
pub fn env_jobs() -> Option<usize> {
    static ENV_JOBS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV_JOBS.get_or_init(|| parse_jobs(std::env::var("MAPG_JOBS").ok().as_deref()))
}

/// Parses a worker-budget string: a positive integer, else `None`.
fn parse_jobs(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Runs `f` with [`default_jobs`] pinned to `jobs` on the current thread,
/// restoring the previous value afterwards (also on panic).
///
/// The override is thread-local and nestable, so concurrent tests (and the
/// pool's own workers) never observe each other's setting.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn with_default_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    assert!(jobs > 0, "job count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEFAULT_JOBS.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(DEFAULT_JOBS.with(|cell| cell.replace(Some(jobs))));
    f()
}

/// A work-sharing pool configured with a job count.
///
/// The pool is a lightweight handle: workers are scoped to each
/// [`map`](Pool::map) call rather than kept alive between calls, which
/// keeps the crate `unsafe`-free and lets closures borrow locals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running at most `jobs` items concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "job count must be at least 1");
        Pool { jobs }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_jobs() -> Self {
        Pool::new(default_jobs())
    }

    /// The configured job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, returning results in **submission
    /// order** regardless of which worker finished first.
    ///
    /// With `jobs == 1` (or fewer than two items) this degenerates to a
    /// plain serial loop on the calling thread — byte-identical behaviour,
    /// zero threads.
    ///
    /// # Panics
    ///
    /// If a worker's `f` panics, remaining unstarted items are cancelled
    /// and the first panic payload is re-raised on the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() < 2 {
            return items.into_iter().map(f).collect();
        }

        let total = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(total) {
                scope.spawn(|| {
                    while !poisoned.load(Ordering::Acquire) {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(index) else { break };
                        let item = slot
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("item taken twice");
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(result) => {
                                *results[index].lock().expect("result slot poisoned") =
                                    Some(result);
                            }
                            Err(payload) => {
                                let mut first = first_panic.lock().expect("panic slot poisoned");
                                if first.is_none() {
                                    *first = Some(payload);
                                }
                                poisoned.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                });
            }
        });

        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without producing a result")
            })
            .collect()
    }
}

impl Pool {
    /// Spawns the pool's workers **once** and hands `session` a
    /// [`ScopedPool`] whose [`map`](ScopedPool::map) can be called many
    /// times against those same threads — the persistent-pool counterpart
    /// to [`Pool::map`], which spawns and joins a fresh worker set per
    /// call. A driver that dispatches a batch per epoch (the sharded
    /// cluster engine advancing one segment per controller decision) pays
    /// thread startup once per *session* instead of once per *epoch*.
    ///
    /// The work function is fixed at spawn time, which is what keeps the
    /// crate `unsafe`-free: jobs are owned `T` values moved through a
    /// queue to monomorphic workers, so no closure lifetime ever needs
    /// erasing. Items and the work function may still borrow from the
    /// caller's stack — the workers live inside a [`std::thread::scope`].
    ///
    /// With `jobs == 1` no threads are spawned at all and every `map`
    /// runs inline on the caller, byte-identical to the threaded result.
    ///
    /// # Panics
    ///
    /// A panic in `work` cancels the rest of its batch and is re-raised
    /// from that `map` call; the pool itself stays usable for subsequent
    /// batches. A panic in `session` shuts the workers down cleanly (no
    /// deadlocked joins) and unwinds through this call.
    pub fn scoped<T, R, F, Out>(
        &self,
        work: F,
        session: impl FnOnce(&ScopedPool<'_, T, R>) -> Out,
    ) -> Out
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let shared = ScopedShared {
            state: Mutex::new(ScopedState {
                items: Vec::new(),
                results: Vec::new(),
                next: 0,
                pending: 0,
                poisoned: false,
                shutdown: false,
                panic: None,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        };
        let handle = ScopedPool {
            shared: &shared,
            work: &work,
            jobs: self.jobs,
        };
        if self.jobs == 1 {
            return session(&handle);
        }
        std::thread::scope(|scope| {
            for _ in 0..self.jobs {
                scope.spawn(|| worker_loop(&shared, &work));
            }
            // Runs on every exit from `session`, panicking included, so
            // the scope's implicit joins never wait on sleeping workers.
            let _guard = ShutdownGuard(&shared);
            session(&handle)
        })
    }
}

/// Queue state shared between a [`ScopedPool`]'s owner and its workers.
/// One batch is in flight at a time; the buffers are reused across
/// batches so steady-state dispatch allocates nothing.
struct ScopedState<T, R> {
    items: Vec<Option<T>>,
    results: Vec<Option<R>>,
    next: usize,
    pending: usize,
    poisoned: bool,
    shutdown: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopedShared<T, R> {
    state: Mutex<ScopedState<T, R>>,
    work_ready: Condvar,
    batch_done: Condvar,
}

struct ShutdownGuard<'a, T, R>(&'a ScopedShared<T, R>);

impl<T, R> Drop for ShutdownGuard<'_, T, R> {
    fn drop(&mut self) {
        let mut state = match self.0.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.shutdown = true;
        drop(state);
        self.0.work_ready.notify_all();
    }
}

fn worker_loop<T, R>(shared: &ScopedShared<T, R>, work: &(impl Fn(T) -> R + Sync)) {
    let mut state = shared.state.lock().expect("scoped pool state poisoned");
    loop {
        if state.shutdown {
            return;
        }
        if state.next >= state.items.len() {
            state = shared
                .work_ready
                .wait(state)
                .expect("scoped pool state poisoned");
            continue;
        }
        let index = state.next;
        state.next += 1;
        let item = state.items[index].take().expect("item claimed twice");
        if state.poisoned {
            // A sibling panicked in this batch: consume the item unrun.
            drop(item);
            state.pending -= 1;
            if state.pending == 0 {
                shared.batch_done.notify_all();
            }
            continue;
        }
        drop(state);
        let outcome = catch_unwind(AssertUnwindSafe(|| work(item)));
        state = shared.state.lock().expect("scoped pool state poisoned");
        match outcome {
            Ok(result) => state.results[index] = Some(result),
            Err(payload) => {
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
                state.poisoned = true;
            }
        }
        state.pending -= 1;
        if state.pending == 0 {
            shared.batch_done.notify_all();
        }
    }
}

/// Handle to a running [`Pool::scoped`] worker set; cheap to pass down a
/// call tree, with [`map`](ScopedPool::map) callable any number of times.
pub struct ScopedPool<'scope, T, R> {
    shared: &'scope ScopedShared<T, R>,
    work: &'scope (dyn Fn(T) -> R + Sync),
    jobs: usize,
}

impl<T: Send, R: Send> ScopedPool<'_, T, R> {
    /// The worker count the owning [`Pool`] was configured with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies the session's work function to every item on the resident
    /// workers, returning results in **submission order** — the same
    /// contract as [`Pool::map`], minus the per-call thread spawn.
    ///
    /// With `jobs == 1` or fewer than two items the batch runs inline on
    /// the caller (the workers, if any, stay parked).
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the batch after cancelling its
    /// remaining items; later batches on the same pool run normally.
    /// Also panics if called re-entrantly from inside the work function.
    pub fn map(&self, items: Vec<T>) -> Vec<R> {
        if self.jobs == 1 || items.len() < 2 {
            return items.into_iter().map(self.work).collect();
        }
        let total = items.len();
        let mut state = self
            .shared
            .state
            .lock()
            .expect("scoped pool state poisoned");
        assert!(
            state.pending == 0,
            "ScopedPool::map re-entered while a batch is in flight"
        );
        state.items.clear();
        state.items.extend(items.into_iter().map(Some));
        state.results.clear();
        state.results.resize_with(total, || None);
        state.next = 0;
        state.pending = total;
        state.poisoned = false;
        self.shared.work_ready.notify_all();
        while state.pending > 0 {
            state = self
                .shared
                .batch_done
                .wait(state)
                .expect("scoped pool state poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
        state
            .results
            .drain(..)
            .map(|slot| slot.expect("worker exited without producing a result"))
            .collect()
    }
}

impl Default for Pool {
    /// Equivalent to [`Pool::with_default_jobs`].
    fn default() -> Self {
        Pool::with_default_jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn jobs_env_parser_accepts_positive_integers_only() {
        assert_eq!(parse_jobs(None), None);
        assert_eq!(parse_jobs(Some("")), None);
        assert_eq!(parse_jobs(Some("0")), None);
        assert_eq!(parse_jobs(Some("-3")), None);
        assert_eq!(parse_jobs(Some("many")), None);
        assert_eq!(parse_jobs(Some("4")), Some(4));
        assert_eq!(parse_jobs(Some(" 16 ")), Some(16));
    }

    #[test]
    fn thread_local_override_beats_env_budget() {
        // Whatever MAPG_JOBS says (usually unset under `cargo test`),
        // an explicit with_default_jobs pin must win.
        assert_eq!(with_default_jobs(3, default_jobs), 3);
    }

    #[test]
    fn map_preserves_submission_order() {
        // Later items finish first (earlier ones sleep longer), so ordered
        // output proves reordering happens on collection, not by luck.
        let items: Vec<u64> = (0..32).collect();
        let out = Pool::new(8).map(items, |x| {
            std::thread::sleep(Duration::from_millis(32 - x));
            x * 10
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_map() {
        let serial: Vec<u64> = (0..100u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        let parallel = Pool::new(5).map((0..100u64).collect(), |x| x.wrapping_mul(x) ^ 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_one_runs_inline_without_threads() {
        let caller = std::thread::current().id();
        let out = Pool::new(1).map(vec![1, 2, 3], |x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = Pool::new(8).map(vec![41], |x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = Pool::new(4).map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_borrow_from_the_caller() {
        let counter = AtomicUsize::new(0);
        let out = Pool::new(4).map((0..10).collect(), |x: usize| {
            counter.fetch_add(x, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 10);
        assert_eq!(counter.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).map((0..16).collect(), |x: u32| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x
            });
        }));
        let payload = result.expect_err("panic should propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload should be the original format string");
        assert_eq!(message, "boom at 5");
    }

    #[test]
    fn panic_cancels_remaining_items() {
        let started = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Two workers; item 0 panics immediately, so the pool should
            // stop well before all 10 000 items have been started.
            Pool::new(2).map((0..10_000).collect(), |x: u32| {
                started.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("early");
                }
                std::thread::sleep(Duration::from_millis(1));
                x
            });
        }));
        assert!(result.is_err());
        assert!(
            started.load(Ordering::Relaxed) < 10_000,
            "panic did not cancel the remaining work"
        );
    }

    #[test]
    fn scoped_map_matches_serial_across_batches() {
        Pool::new(4).scoped(
            |x: u64| x.wrapping_mul(x) ^ 7,
            |pool| {
                assert_eq!(pool.jobs(), 4);
                for batch in 0..5u64 {
                    let items: Vec<u64> = (batch * 100..batch * 100 + 100).collect();
                    let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
                    assert_eq!(pool.map(items), expected, "batch {batch}");
                }
            },
        );
    }

    #[test]
    fn scoped_map_preserves_submission_order() {
        // Later items finish first; ordered output proves collection-side
        // reordering, same as the per-call pool.
        Pool::new(8).scoped(
            |x: u64| {
                std::thread::sleep(Duration::from_millis(32 - x));
                x * 10
            },
            |pool| {
                let out = pool.map((0..32).collect());
                assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
            },
        );
    }

    #[test]
    fn scoped_jobs_one_runs_inline() {
        let caller = std::thread::current().id();
        Pool::new(1).scoped(
            |x: u32| {
                assert_eq!(std::thread::current().id(), caller);
                x + 1
            },
            |pool| {
                assert_eq!(pool.map(vec![1, 2, 3]), vec![2, 3, 4]);
                assert_eq!(pool.map(Vec::new()), Vec::<u32>::new());
            },
        );
    }

    #[test]
    fn scoped_single_item_runs_inline_with_workers_parked() {
        let caller = std::thread::current().id();
        Pool::new(4).scoped(
            |x: u32| (x + 1, std::thread::current().id()),
            |pool| {
                let out = pool.map(vec![41]);
                assert_eq!(out, vec![(42, caller)]);
            },
        );
    }

    #[test]
    fn scoped_workers_borrow_from_the_caller() {
        let counter = AtomicUsize::new(0);
        Pool::new(4).scoped(
            |x: usize| counter.fetch_add(x, Ordering::Relaxed),
            |pool| {
                assert_eq!(pool.map((0..10).collect()).len(), 10);
            },
        );
        assert_eq!(counter.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn scoped_batch_panic_propagates_and_pool_survives() {
        Pool::new(4).scoped(
            |x: u32| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x * 2
            },
            |pool| {
                let result = catch_unwind(AssertUnwindSafe(|| pool.map((0..16).collect())));
                let payload = result.expect_err("panic should propagate");
                let message = payload
                    .downcast_ref::<String>()
                    .expect("payload should be the original format string");
                assert_eq!(message, "boom at 5");
                // The pool is still serviceable after the failed batch.
                assert_eq!(pool.map(vec![1, 2, 3]), vec![2, 4, 6]);
            },
        );
    }

    #[test]
    fn scoped_session_panic_shuts_workers_down() {
        // A panicking session body must not deadlock the scope joins.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).scoped(
                |x: u32| x,
                |pool| {
                    assert_eq!(pool.map(vec![1, 2, 3]), vec![1, 2, 3]);
                    panic!("session body failed");
                },
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn zero_jobs_rejected() {
        assert!(catch_unwind(|| Pool::new(0)).is_err());
        assert!(catch_unwind(|| with_default_jobs(0, || ())).is_err());
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn with_default_jobs_overrides_and_restores() {
        let ambient = default_jobs();
        let seen = with_default_jobs(3, || {
            assert_eq!(Pool::with_default_jobs().jobs(), 3);
            with_default_jobs(7, default_jobs)
        });
        assert_eq!(seen, 7);
        assert_eq!(default_jobs(), ambient);
    }

    #[test]
    fn with_default_jobs_restores_on_panic() {
        let ambient = default_jobs();
        let _ = catch_unwind(|| with_default_jobs(2, || panic!("inner")));
        assert_eq!(default_jobs(), ambient);
    }

    #[test]
    fn with_default_jobs_is_thread_local() {
        with_default_jobs(9999, || {
            assert_eq!(default_jobs(), 9999);
            // A fresh thread sees the ambient default, not our override.
            let inner = std::thread::scope(|s| s.spawn(default_jobs).join().unwrap());
            assert_ne!(inner, 9999);
        });
    }
}
