//! Vendored work-sharing thread pool for the MAPG workspace.
//!
//! The build environment has no registry access, so instead of `rayon` the
//! workspace vendors this std-only pool covering exactly what the
//! simulation harness needs:
//!
//! - [`Pool::map`] — an **ordered** parallel map: results come back in
//!   submission order regardless of completion order, so seeded
//!   (deterministic) runs produce bit-identical output at any job count;
//! - **scoped workers** — workers borrow from the caller's stack via
//!   [`std::thread::scope`], no `'static` bounds on items or closures;
//! - **work sharing** — workers pull the next item index from a shared
//!   atomic counter, so an uneven matrix (one slow simulation, many fast
//!   ones) still keeps every worker busy;
//! - **panic propagation** — the first worker panic cancels remaining
//!   items and is re-raised on the calling thread with its original
//!   payload;
//! - a **degenerate serial path** — `jobs == 1` (or a single item) runs
//!   inline on the caller with no threads spawned, which is the baseline
//!   the determinism tests compare against;
//! - a **supervised mode** — [`Supervisor::map_supervised`] layers
//!   hierarchical cancellation ([`CancelToken`]), per-job wall-clock
//!   deadlines (a monitor thread), panic quarantine (per-job
//!   [`JobOutcome`]s instead of batch aborts), and bounded
//!   retry-with-backoff on top, for long campaigns where one bad job
//!   must not take down the suite.
//!
//! ```
//! use mapg_pool::Pool;
//!
//! let squares = Pool::new(4).map((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! # Default job count
//!
//! [`default_jobs`] resolves to [`std::thread::available_parallelism`],
//! overridable per-thread with [`with_default_jobs`] so a harness (or a
//! test) can pin the whole call tree beneath it — e.g. the `experiments`
//! binary pins each experiment's inner [`SuiteRunner`] fan-out to the
//! `--jobs` value, and the determinism tests pin `1` vs `N` without
//! touching process-global state.
//!
//! [`SuiteRunner`]: https://docs.rs/mapg

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod supervise;

pub use supervise::{
    CancelToken, JobCtx, JobFailure, JobOutcome, JobReport, Supervisor, POLL_INTERVAL,
};

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static DEFAULT_JOBS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The job count [`Pool::with_default_jobs`] uses: the innermost active
/// [`with_default_jobs`] override on this thread, else
/// [`std::thread::available_parallelism`] (1 if that is unavailable).
pub fn default_jobs() -> usize {
    DEFAULT_JOBS.with(|cell| match cell.get() {
        Some(jobs) => jobs,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Runs `f` with [`default_jobs`] pinned to `jobs` on the current thread,
/// restoring the previous value afterwards (also on panic).
///
/// The override is thread-local and nestable, so concurrent tests (and the
/// pool's own workers) never observe each other's setting.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn with_default_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    assert!(jobs > 0, "job count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEFAULT_JOBS.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(DEFAULT_JOBS.with(|cell| cell.replace(Some(jobs))));
    f()
}

/// A work-sharing pool configured with a job count.
///
/// The pool is a lightweight handle: workers are scoped to each
/// [`map`](Pool::map) call rather than kept alive between calls, which
/// keeps the crate `unsafe`-free and lets closures borrow locals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running at most `jobs` items concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "job count must be at least 1");
        Pool { jobs }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_jobs() -> Self {
        Pool::new(default_jobs())
    }

    /// The configured job count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, returning results in **submission
    /// order** regardless of which worker finished first.
    ///
    /// With `jobs == 1` (or fewer than two items) this degenerates to a
    /// plain serial loop on the calling thread — byte-identical behaviour,
    /// zero threads.
    ///
    /// # Panics
    ///
    /// If a worker's `f` panics, remaining unstarted items are cancelled
    /// and the first panic payload is re-raised on the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() < 2 {
            return items.into_iter().map(f).collect();
        }

        let total = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(total) {
                scope.spawn(|| {
                    while !poisoned.load(Ordering::Acquire) {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(index) else { break };
                        let item = slot
                            .lock()
                            .expect("input slot poisoned")
                            .take()
                            .expect("item taken twice");
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(result) => {
                                *results[index].lock().expect("result slot poisoned") =
                                    Some(result);
                            }
                            Err(payload) => {
                                let mut first = first_panic.lock().expect("panic slot poisoned");
                                if first.is_none() {
                                    *first = Some(payload);
                                }
                                poisoned.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                });
            }
        });

        if let Some(payload) = first_panic.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without producing a result")
            })
            .collect()
    }
}

impl Default for Pool {
    /// Equivalent to [`Pool::with_default_jobs`].
    fn default() -> Self {
        Pool::with_default_jobs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn map_preserves_submission_order() {
        // Later items finish first (earlier ones sleep longer), so ordered
        // output proves reordering happens on collection, not by luck.
        let items: Vec<u64> = (0..32).collect();
        let out = Pool::new(8).map(items, |x| {
            std::thread::sleep(Duration::from_millis(32 - x));
            x * 10
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_map() {
        let serial: Vec<u64> = (0..100u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        let parallel = Pool::new(5).map((0..100u64).collect(), |x| x.wrapping_mul(x) ^ 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_one_runs_inline_without_threads() {
        let caller = std::thread::current().id();
        let out = Pool::new(1).map(vec![1, 2, 3], |x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = Pool::new(8).map(vec![41], |x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = Pool::new(4).map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_borrow_from_the_caller() {
        let counter = AtomicUsize::new(0);
        let out = Pool::new(4).map((0..10).collect(), |x: usize| {
            counter.fetch_add(x, Ordering::Relaxed)
        });
        assert_eq!(out.len(), 10);
        assert_eq!(counter.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).map((0..16).collect(), |x: u32| {
                if x == 5 {
                    panic!("boom at {x}");
                }
                x
            });
        }));
        let payload = result.expect_err("panic should propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload should be the original format string");
        assert_eq!(message, "boom at 5");
    }

    #[test]
    fn panic_cancels_remaining_items() {
        let started = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Two workers; item 0 panics immediately, so the pool should
            // stop well before all 10 000 items have been started.
            Pool::new(2).map((0..10_000).collect(), |x: u32| {
                started.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("early");
                }
                std::thread::sleep(Duration::from_millis(1));
                x
            });
        }));
        assert!(result.is_err());
        assert!(
            started.load(Ordering::Relaxed) < 10_000,
            "panic did not cancel the remaining work"
        );
    }

    #[test]
    fn zero_jobs_rejected() {
        assert!(catch_unwind(|| Pool::new(0)).is_err());
        assert!(catch_unwind(|| with_default_jobs(0, || ())).is_err());
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn with_default_jobs_overrides_and_restores() {
        let ambient = default_jobs();
        let seen = with_default_jobs(3, || {
            assert_eq!(Pool::with_default_jobs().jobs(), 3);
            with_default_jobs(7, default_jobs)
        });
        assert_eq!(seen, 7);
        assert_eq!(default_jobs(), ambient);
    }

    #[test]
    fn with_default_jobs_restores_on_panic() {
        let ambient = default_jobs();
        let _ = catch_unwind(|| with_default_jobs(2, || panic!("inner")));
        assert_eq!(default_jobs(), ambient);
    }

    #[test]
    fn with_default_jobs_is_thread_local() {
        with_default_jobs(9999, || {
            assert_eq!(default_jobs(), 9999);
            // A fresh thread sees the ambient default, not our override.
            let inner = std::thread::scope(|s| s.spawn(default_jobs).join().unwrap());
            assert_ne!(inner, 9999);
        });
    }
}
