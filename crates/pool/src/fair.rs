//! Fair multi-tenant job queue: the scheduling policy under `mapgd`.
//!
//! [`FairQueue`] decides *which* job runs next when many clients share
//! one daemon; the [`Supervisor`](crate::Supervisor) then decides *how*
//! it runs (cancellation, deadlines, quarantine, retry). The policy:
//!
//! - **per-client FIFO** — within one client and one priority class,
//!   jobs dispatch in submission order;
//! - **priorities** — higher [`Priority`] values dispatch first,
//!   strictly: a priority-2 job anywhere beats every priority-1 job
//!   (within a client a higher-priority job overtakes earlier
//!   lower-priority submissions);
//! - **round-robin across clients** — among clients whose best pending
//!   priority ties, dispatch rotates in client-registration order
//!   starting after the last dispatched client, so one chatty tenant
//!   cannot starve the rest;
//! - **per-client in-flight quotas** — a client at its quota is
//!   ineligible until [`FairQueue::mark_done`] frees a slot; its queued
//!   jobs wait without blocking other clients;
//! - **cancellation by id** — a queued job can be removed before it
//!   ever dispatches ([`FairQueue::cancel`]); cancelling *running* jobs
//!   is the executor's business (cancel the job's
//!   [`CancelToken`](crate::CancelToken)).
//!
//! The queue is a plain single-threaded data structure — deterministic
//! and directly testable. A server wraps it in a `Mutex` + `Condvar`
//! and calls [`FairQueue::next`] from its runner threads.

use std::collections::VecDeque;

/// Job priority: higher dispatches first. The default is 1; 0 is a
/// background class.
pub type Priority = u8;

/// One queued job, not yet dispatched.
#[derive(Debug, Clone)]
struct Queued<T> {
    id: u64,
    priority: Priority,
    seq: u64,
    payload: T,
}

/// One tenant's state: FIFO queue, in-flight count, quota.
#[derive(Debug)]
struct Client<T> {
    name: String,
    queue: VecDeque<Queued<T>>,
    inflight: usize,
    quota: usize,
}

/// A dispatched job, as returned by [`FairQueue::next`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch<T> {
    /// The queue-assigned job id (process-unique, monotonic).
    pub id: u64,
    /// The submitting client.
    pub client: String,
    /// The job's priority class.
    pub priority: Priority,
    /// The job payload.
    pub payload: T,
}

/// Aggregate queue statistics for one client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientStats {
    /// Client name.
    pub client: String,
    /// Jobs queued (not yet dispatched).
    pub queued: usize,
    /// Jobs dispatched and not yet marked done.
    pub inflight: usize,
    /// The client's in-flight quota.
    pub quota: usize,
}

/// The fair multi-tenant queue. See the module docs for the policy.
#[derive(Debug)]
pub struct FairQueue<T> {
    clients: Vec<Client<T>>,
    /// Index (into `clients`) where the round-robin scan starts: one
    /// past the last dispatched client.
    cursor: usize,
    next_id: u64,
    next_seq: u64,
    default_quota: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue where every client may have up to `default_quota`
    /// jobs in flight at once.
    ///
    /// # Panics
    ///
    /// Panics if `default_quota` is zero (a zero quota could never
    /// dispatch anything).
    pub fn new(default_quota: usize) -> Self {
        assert!(default_quota > 0, "quota must be at least 1");
        FairQueue {
            clients: Vec::new(),
            cursor: 0,
            next_id: 1,
            next_seq: 0,
            default_quota,
        }
    }

    fn client_index(&mut self, name: &str) -> usize {
        match self.clients.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                self.clients.push(Client {
                    name: name.to_owned(),
                    queue: VecDeque::new(),
                    inflight: 0,
                    quota: self.default_quota,
                });
                self.clients.len() - 1
            }
        }
    }

    /// Enqueues a job for `client` and returns its id.
    pub fn submit(&mut self, client: &str, priority: Priority, payload: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = self.client_index(client);
        self.clients[index].queue.push_back(Queued {
            id,
            priority,
            seq,
            payload,
        });
        id
    }

    /// Caps `client` at `quota` concurrent in-flight jobs (registering
    /// the client if it has not submitted yet).
    ///
    /// # Panics
    ///
    /// Panics if `quota` is zero.
    pub fn set_quota(&mut self, client: &str, quota: usize) {
        assert!(quota > 0, "quota must be at least 1");
        let index = self.client_index(client);
        self.clients[index].quota = quota;
    }

    /// Removes a still-queued job, returning its payload. `None` when
    /// the id is unknown or the job already dispatched.
    pub fn cancel(&mut self, id: u64) -> Option<T> {
        for client in &mut self.clients {
            if let Some(pos) = client.queue.iter().position(|j| j.id == id) {
                return client.queue.remove(pos).map(|j| j.payload);
            }
        }
        None
    }

    /// Dispatches the next job under the fairness policy, or `None`
    /// when no client is eligible (all empty or all at quota).
    ///
    /// The dispatched client's in-flight count is incremented; the
    /// executor must call [`mark_done`](Self::mark_done) when the job
    /// finishes (however it finishes) to free the slot.
    // Not an Iterator: dispatch mutates quota state and must stay
    // `&mut self`-with-side-effects, not a resumable iteration.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Dispatch<T>> {
        let n = self.clients.len();
        if n == 0 {
            return None;
        }
        // Highest pending priority among clients under quota.
        let best = self
            .clients
            .iter()
            .filter(|c| c.inflight < c.quota)
            .flat_map(|c| c.queue.iter().map(|j| j.priority))
            .max()?;
        // Round-robin: first client at or after the cursor holding a
        // job at that priority (and under quota).
        for step in 0..n {
            let index = (self.cursor + step) % n;
            let client = &mut self.clients[index];
            if client.inflight >= client.quota {
                continue;
            }
            // Oldest job at the best priority (per-client FIFO within
            // the priority class).
            let pick = client
                .queue
                .iter()
                .enumerate()
                .filter(|(_, j)| j.priority == best)
                .min_by_key(|(_, j)| j.seq)
                .map(|(pos, _)| pos);
            if let Some(pos) = pick {
                let job = client.queue.remove(pos).expect("position just found");
                client.inflight += 1;
                self.cursor = (index + 1) % n;
                return Some(Dispatch {
                    id: job.id,
                    client: client.name.clone(),
                    priority: job.priority,
                    payload: job.payload,
                });
            }
        }
        None
    }

    /// Frees one in-flight slot for `client` (the job finished,
    /// whatever its outcome).
    pub fn mark_done(&mut self, client: &str) {
        if let Some(c) = self.clients.iter_mut().find(|c| c.name == client) {
            c.inflight = c.inflight.saturating_sub(1);
        }
    }

    /// Total queued (undispatched) jobs across all clients.
    pub fn queued(&self) -> usize {
        self.clients.iter().map(|c| c.queue.len()).sum()
    }

    /// Total dispatched-but-unfinished jobs across all clients.
    pub fn inflight(&self) -> usize {
        self.clients.iter().map(|c| c.inflight).sum()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queued() == 0 && self.inflight() == 0
    }

    /// Per-client statistics, in client-registration order.
    pub fn stats(&self) -> Vec<ClientStats> {
        self.clients
            .iter()
            .map(|c| ClientStats {
                client: c.name.clone(),
                queued: c.queue.len(),
                inflight: c.inflight,
                quota: c.quota,
            })
            .collect()
    }

    /// Drains every queued job (e.g. at shutdown), returning
    /// `(id, client, payload)` triples in no particular order.
    pub fn drain(&mut self) -> Vec<(u64, String, T)> {
        let mut out = Vec::new();
        for client in &mut self.clients {
            while let Some(job) = client.queue.pop_front() {
                out.push((job.id, client.name.clone(), job.payload));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dispatch everything currently eligible, recording client names.
    fn drain_order(queue: &mut FairQueue<&'static str>) -> Vec<(String, &'static str)> {
        let mut order = Vec::new();
        while let Some(d) = queue.next() {
            order.push((d.client.clone(), d.payload));
            queue.mark_done(&d.client);
        }
        order
    }

    #[test]
    fn per_client_fifo_is_preserved() {
        let mut q = FairQueue::new(4);
        q.submit("a", 1, "a1");
        q.submit("a", 1, "a2");
        q.submit("a", 1, "a3");
        let order = drain_order(&mut q);
        assert_eq!(
            order,
            vec![
                ("a".to_owned(), "a1"),
                ("a".to_owned(), "a2"),
                ("a".to_owned(), "a3")
            ]
        );
    }

    #[test]
    fn round_robin_across_clients() {
        let mut q = FairQueue::new(4);
        // Client a floods first; b and c each submit afterwards.
        q.submit("a", 1, "a1");
        q.submit("a", 1, "a2");
        q.submit("a", 1, "a3");
        q.submit("b", 1, "b1");
        q.submit("c", 1, "c1");
        let order = drain_order(&mut q);
        let clients: Vec<&str> = order.iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(
            clients,
            vec!["a", "b", "c", "a", "a"],
            "one job per client per round, registration order"
        );
    }

    #[test]
    fn higher_priority_dispatches_first_even_across_clients() {
        let mut q = FairQueue::new(4);
        q.submit("a", 1, "a-normal");
        q.submit("b", 3, "b-urgent");
        q.submit("a", 2, "a-high");
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            vec!["b-urgent", "a-high", "a-normal"]
        );
    }

    #[test]
    fn within_a_client_priority_overtakes_fifo() {
        let mut q = FairQueue::new(4);
        q.submit("a", 0, "background");
        q.submit("a", 2, "urgent");
        q.submit("a", 0, "background2");
        let order = drain_order(&mut q);
        assert_eq!(
            order.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            vec!["urgent", "background", "background2"]
        );
    }

    #[test]
    fn quota_blocks_dispatch_until_done() {
        let mut q = FairQueue::new(1);
        q.submit("a", 1, "a1");
        q.submit("a", 1, "a2");
        q.submit("b", 1, "b1");
        let first = q.next().unwrap();
        assert_eq!(first.payload, "a1");
        // a is at quota; only b is eligible.
        let second = q.next().unwrap();
        assert_eq!(second.payload, "b1");
        assert!(q.next().is_none(), "both clients at quota");
        q.mark_done("a");
        let third = q.next().unwrap();
        assert_eq!(third.payload, "a2");
        assert_eq!(q.inflight(), 2);
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn quota_never_starves_other_clients_of_lower_priority() {
        // a holds an urgent job but is at quota: b's normal job must
        // dispatch instead of the queue stalling on a's priority.
        let mut q = FairQueue::new(1);
        q.submit("a", 1, "a1");
        assert_eq!(q.next().unwrap().payload, "a1");
        q.submit("a", 9, "a-urgent");
        q.submit("b", 1, "b1");
        assert_eq!(q.next().unwrap().payload, "b1");
        q.mark_done("a");
        assert_eq!(q.next().unwrap().payload, "a-urgent");
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let mut q = FairQueue::new(2);
        let a1 = q.submit("a", 1, "a1");
        let a2 = q.submit("a", 1, "a2");
        let dispatched = q.next().unwrap();
        assert_eq!(dispatched.id, a1);
        assert!(q.cancel(a1).is_none(), "already dispatched");
        assert_eq!(q.cancel(a2), Some("a2"));
        assert!(q.cancel(a2).is_none(), "already cancelled");
        assert!(q.cancel(999).is_none(), "unknown id");
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut q = FairQueue::new(2);
        let ids: Vec<u64> = (0..5).map(|i| q.submit("a", 1, i)).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stats_track_queue_and_inflight() {
        let mut q = FairQueue::new(3);
        q.set_quota("a", 2);
        q.submit("a", 1, "a1");
        q.submit("b", 1, "b1");
        q.next().unwrap();
        let stats = q.stats();
        assert_eq!(
            stats[0],
            ClientStats {
                client: "a".to_owned(),
                queued: 0,
                inflight: 1,
                quota: 2
            }
        );
        assert_eq!(
            stats[1],
            ClientStats {
                client: "b".to_owned(),
                queued: 1,
                inflight: 0,
                quota: 3
            }
        );
        assert!(!q.is_idle());
    }

    #[test]
    fn drain_empties_every_queue() {
        let mut q = FairQueue::new(2);
        q.submit("a", 1, "a1");
        q.submit("b", 1, "b1");
        q.submit("a", 1, "a2");
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_idle());
        assert!(q.next().is_none());
    }

    #[test]
    fn empty_queue_dispatches_nothing() {
        let mut q: FairQueue<u32> = FairQueue::new(1);
        assert!(q.next().is_none());
        assert!(q.is_idle());
        q.mark_done("ghost"); // unknown client: no-op, no panic
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_default_quota_rejected() {
        let _ = FairQueue::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_quota_rejected() {
        FairQueue::<u32>::new(1).set_quota("a", 0);
    }
}
