//! Supervised job execution: cooperative cancellation, wall-clock
//! deadlines, panic quarantine, and bounded retry.
//!
//! [`Pool::map`](crate::Pool::map) is the right tool for a batch of
//! trusted pure functions: a panic anywhere aborts the whole batch.
//! Long campaigns (thousands of experiments or fuzz scenarios over
//! hours) need the opposite discipline — one bad job must not take the
//! suite down — so [`Supervisor::map_supervised`] quarantines every
//! per-job failure into a [`JobOutcome`] instead:
//!
//! - **panic quarantine** — each job runs on its own thread under
//!   `catch_unwind`; a panic becomes [`JobOutcome::Panicked`] with the
//!   original payload message, and the rest of the batch keeps running;
//! - **deadlines** — a dedicated monitor thread watches every in-flight
//!   job and, once its wall-clock deadline passes, cancels the job's
//!   token and releases the worker ([`JobOutcome::TimedOut`]); the hung
//!   job thread is abandoned (it keeps running detached until the
//!   process exits — quarantine, not preemption);
//! - **cancellation** — a [`CancelToken`] is cooperative and
//!   hierarchical: cancelling a parent cancels every child. Each job
//!   receives a child of the supervisor's batch token through
//!   [`JobCtx`]; cooperative jobs poll it and return early (their
//!   outcome is `Ok`), non-cooperative jobs are abandoned and reported
//!   [`JobOutcome::Cancelled`]. Workers poll every few milliseconds, so
//!   cancellation latency is bounded by [`POLL_INTERVAL`] plus one
//!   journal/checkpoint interval of the caller;
//! - **retry with backoff** — failures classified transient by the
//!   supervisor's filter are retried up to a bounded attempt count with
//!   exponential backoff; [`JobReport::attempts`] records the cost.
//!
//! Results come back in submission order, so a supervised batch is as
//! deterministic as its jobs: outcomes depend only on job behaviour,
//! never on scheduling.
//!
//! ```
//! use mapg_pool::{JobOutcome, Supervisor};
//!
//! let reports = Supervisor::new(4).map_supervised(vec![1u64, 2, 3], |&x, _ctx| {
//!     if x == 2 {
//!         panic!("bad item");
//!     }
//!     x * 10
//! });
//! assert!(matches!(reports[0].outcome, JobOutcome::Ok(10)));
//! assert!(matches!(reports[1].outcome, JobOutcome::Panicked { .. }));
//! assert!(matches!(reports[2].outcome, JobOutcome::Ok(30)));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often waiting workers re-check their job's token and timeout
/// flag. Bounds cancellation and deadline-detection latency.
pub const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// How often the deadline monitor scans in-flight jobs.
const MONITOR_TICK: Duration = Duration::from_millis(2);

/// A cooperative, hierarchical cancellation token.
///
/// Cancelling a token cancels every token derived from it via
/// [`child`](CancelToken::child); [`is_cancelled`](CancelToken::is_cancelled)
/// walks the parent chain. Tokens are cheap to clone (an `Arc`) and
/// cancellation is sticky — there is no un-cancel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh root token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or any ancestor is
    /// cancelled.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Cancels this token (and, transitively, every child).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True when this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut token = self;
        loop {
            if token.inner.cancelled.load(Ordering::Acquire) {
                return true;
            }
            match &token.inner.parent {
                Some(parent) => token = parent,
                None => return false,
            }
        }
    }
}

/// Per-job context handed to the job closure.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// This job's cancellation token (a child of the batch token; also
    /// cancelled when the job's deadline expires). Long-running
    /// cooperative jobs should poll it and return early.
    pub token: CancelToken,
    /// 1-based attempt number (first run is 1, first retry is 2, …).
    pub attempt: u32,
}

/// How one supervised job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<R> {
    /// The job returned a value.
    Ok(R),
    /// The job panicked; the batch kept running.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The job exceeded its wall-clock deadline and was abandoned.
    TimedOut {
        /// The deadline that was enforced.
        deadline: Duration,
    },
    /// The batch was cancelled before (or while) the job ran.
    Cancelled,
}

impl<R> JobOutcome<R> {
    /// True for [`JobOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The result value, when the job succeeded.
    pub fn ok(&self) -> Option<&R> {
        match self {
            JobOutcome::Ok(value) => Some(value),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the result value if any.
    pub fn into_ok(self) -> Option<R> {
        match self {
            JobOutcome::Ok(value) => Some(value),
            _ => None,
        }
    }

    /// A stable machine-readable tag: `ok`, `panicked`, `timed-out` or
    /// `cancelled` (used by manifests and journals).
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Ok(_) => "ok",
            JobOutcome::Panicked { .. } => "panicked",
            JobOutcome::TimedOut { .. } => "timed-out",
            JobOutcome::Cancelled => "cancelled",
        }
    }
}

/// The record of one supervised job: final outcome, attempts spent, and
/// total wall time across attempts (including backoff sleeps).
#[derive(Debug, Clone)]
pub struct JobReport<R> {
    /// How the job's final attempt ended.
    pub outcome: JobOutcome<R>,
    /// Attempts spent (1 = no retry).
    pub attempts: u32,
    /// Wall time across all attempts.
    pub wall: Duration,
}

/// A failure presented to the transient-failure filter.
#[derive(Debug, Clone)]
pub enum JobFailure<'a> {
    /// The attempt panicked with this message.
    Panicked {
        /// The panic payload, rendered as text.
        message: &'a str,
    },
    /// The attempt exceeded this deadline.
    TimedOut {
        /// The enforced deadline.
        deadline: Duration,
    },
}

type TransientFilter = Arc<dyn Fn(&JobFailure) -> bool + Send + Sync>;

/// A supervised batch executor: worker count, optional per-job
/// deadline, a batch [`CancelToken`], and a bounded retry policy.
#[derive(Clone)]
pub struct Supervisor {
    jobs: usize,
    deadline: Option<Duration>,
    token: CancelToken,
    max_attempts: u32,
    backoff: Duration,
    transient: TransientFilter,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("jobs", &self.jobs)
            .field("deadline", &self.deadline)
            .field("max_attempts", &self.max_attempts)
            .field("backoff", &self.backoff)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// A supervisor running at most `jobs` items concurrently, with no
    /// deadline and no retry.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Self {
        assert!(jobs > 0, "job count must be at least 1");
        Supervisor {
            jobs,
            deadline: None,
            token: CancelToken::new(),
            max_attempts: 1,
            backoff: Duration::from_millis(100),
            // By default every failure is considered transient; with
            // max_attempts == 1 this is moot, and with_retries alone
            // then retries everything. Narrow with
            // with_transient_filter.
            transient: Arc::new(|_| true),
        }
    }

    /// Sets a per-job wall-clock deadline, enforced by the monitor
    /// thread.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Uses `token` as the batch cancellation token (so an external
    /// holder — a signal handler, a server, a test — can cancel the
    /// batch while it runs).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// Enables retry: up to `max_attempts` total attempts per job, with
    /// exponential backoff starting at `backoff` (doubled per retry).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_retries(mut self, max_attempts: u32, backoff: Duration) -> Self {
        assert!(max_attempts > 0, "max_attempts must be at least 1");
        self.max_attempts = max_attempts;
        self.backoff = backoff;
        self
    }

    /// Restricts retry to failures `filter` classifies transient.
    pub fn with_transient_filter(
        mut self,
        filter: impl Fn(&JobFailure) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.transient = Arc::new(filter);
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured per-job deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The batch cancellation token. Cancelling it stops the batch:
    /// unstarted jobs come back [`JobOutcome::Cancelled`], in-flight
    /// cooperative jobs see their child token cancelled, in-flight
    /// non-cooperative jobs are abandoned.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.token
    }

    /// Applies `f` to every item under supervision, returning one
    /// [`JobReport`] per item in **submission order**.
    ///
    /// Each attempt runs on a dedicated job thread so panics and
    /// deadline overruns are quarantined per job instead of aborting
    /// the batch. `T: Sync + 'static` and `F: 'static` are required
    /// because an abandoned (hung) job thread may outlive this call.
    pub fn map_supervised<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<JobReport<R>>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T, &JobCtx) -> R + Send + Sync + 'static,
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let items = Arc::new(items);
        let f = Arc::new(f);
        let results: Vec<Mutex<Option<JobReport<R>>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let inflight = InFlightRegistry::default();
        let workers = self.jobs.min(total);
        let live_workers = AtomicUsize::new(workers);

        std::thread::scope(|scope| {
            // Deadline monitor: scans in-flight jobs and trips the ones
            // whose wall-clock deadline has passed. Only needed when a
            // deadline is configured — batch cancellation propagates
            // through the token hierarchy without help. Exits once the
            // last worker has retired (the scope joins it afterwards).
            if self.deadline.is_some() {
                scope.spawn(|| {
                    while live_workers.load(Ordering::Acquire) > 0 {
                        inflight.expire_overdue();
                        std::thread::park_timeout(MONITOR_TICK);
                    }
                });
            }
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= total {
                            break;
                        }
                        let report = self.run_one(index, &items, &f, &inflight);
                        *results[index].lock().expect("result slot poisoned") = Some(report);
                    }
                    live_workers.fetch_sub(1, Ordering::Release);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without reporting")
            })
            .collect()
    }

    /// Runs one item through the attempt loop.
    fn run_one<T, R, F>(
        &self,
        index: usize,
        items: &Arc<Vec<T>>,
        f: &Arc<F>,
        inflight: &InFlightRegistry,
    ) -> JobReport<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T, &JobCtx) -> R + Send + Sync + 'static,
    {
        let started = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if self.token.is_cancelled() {
                return JobReport {
                    outcome: JobOutcome::Cancelled,
                    attempts,
                    wall: started.elapsed(),
                };
            }
            let outcome = self.run_attempt(index, attempts, items, f, inflight);
            let retry = match &outcome {
                JobOutcome::Ok(_) | JobOutcome::Cancelled => false,
                JobOutcome::Panicked { message } => (self.transient)(&JobFailure::Panicked {
                    message: message.as_str(),
                }),
                JobOutcome::TimedOut { deadline } => (self.transient)(&JobFailure::TimedOut {
                    deadline: *deadline,
                }),
            };
            if !outcome.is_ok() && retry && attempts < self.max_attempts {
                let backoff = self.backoff.saturating_mul(1 << (attempts - 1).min(16));
                // Back off in poll-sized slices so batch cancellation
                // still lands promptly mid-sleep.
                let wake = Instant::now() + backoff;
                while Instant::now() < wake && !self.token.is_cancelled() {
                    std::thread::sleep(POLL_INTERVAL.min(backoff));
                }
                continue;
            }
            return JobReport {
                outcome,
                attempts,
                wall: started.elapsed(),
            };
        }
    }

    /// Runs one attempt on a fresh job thread and waits for completion,
    /// timeout, or cancellation.
    fn run_attempt<T, R, F>(
        &self,
        index: usize,
        attempt: u32,
        items: &Arc<Vec<T>>,
        f: &Arc<F>,
        inflight: &InFlightRegistry,
    ) -> JobOutcome<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T, &JobCtx) -> R + Send + Sync + 'static,
    {
        let job_token = self.token.child();
        let timed_out = Arc::new(AtomicBool::new(false));
        let guard = inflight.register(InFlight {
            deadline: self.deadline.map(|d| Instant::now() + d),
            token: job_token.clone(),
            timed_out: timed_out.clone(),
        });

        let (tx, rx) = mpsc::channel();
        let ctx = JobCtx {
            token: job_token.clone(),
            attempt,
        };
        let spawned = {
            let items = Arc::clone(items);
            let f = Arc::clone(f);
            std::thread::Builder::new()
                .name(format!("mapg-job-{index}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f(&items[index], &ctx)));
                    // The receiver may be gone (job abandoned) — ignore.
                    let _ = tx.send(result.map_err(panic_message));
                })
        };
        let mut handle = match spawned {
            Ok(handle) => Some(handle),
            Err(error) => {
                drop(guard);
                return JobOutcome::Panicked {
                    message: format!("cannot spawn job thread: {error}"),
                };
            }
        };
        // Join the job thread whenever it actually finished (result or
        // panic received): its teardown releases the closure's shared
        // resources (journal locks, observer handles), which callers
        // may reuse immediately after `map_supervised` returns. Only
        // abandoned attempts — timed out or cancelled, possibly stuck —
        // stay detached.
        let reap = |handle: &mut Option<std::thread::JoinHandle<()>>| {
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        };

        loop {
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok(Ok(value)) => {
                    reap(&mut handle);
                    return JobOutcome::Ok(value);
                }
                Ok(Err(message)) => {
                    reap(&mut handle);
                    return JobOutcome::Panicked { message };
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Deadline first: the monitor cancels the job token
                    // *after* setting the flag, so a timed-out job is
                    // never misreported as merely cancelled.
                    if timed_out.load(Ordering::Acquire) {
                        return JobOutcome::TimedOut {
                            deadline: self.deadline.unwrap_or_default(),
                        };
                    }
                    if job_token.is_cancelled() {
                        return JobOutcome::Cancelled;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    reap(&mut handle);
                    return JobOutcome::Panicked {
                        message: "job thread exited without reporting".to_owned(),
                    };
                }
            }
        }
    }
}

/// One registered in-flight attempt, visible to the monitor.
struct InFlight {
    deadline: Option<Instant>,
    token: CancelToken,
    timed_out: Arc<AtomicBool>,
}

/// The monitor's view of running attempts. Slots are keyed so removal
/// is O(1) amortized without an external slab crate.
#[derive(Default)]
struct InFlightRegistry {
    slots: Mutex<Vec<Option<InFlight>>>,
}

impl InFlightRegistry {
    fn register(&self, entry: InFlight) -> InFlightGuard<'_> {
        let mut slots = self.slots.lock().expect("in-flight registry poisoned");
        let key = match slots.iter().position(Option::is_none) {
            Some(free) => {
                slots[free] = Some(entry);
                free
            }
            None => {
                slots.push(Some(entry));
                slots.len() - 1
            }
        };
        InFlightGuard {
            registry: self,
            key,
        }
    }

    /// Trips every registered attempt whose deadline has passed: sets
    /// its timed-out flag, then cancels its token (ordering matters —
    /// see `run_attempt`).
    fn expire_overdue(&self) {
        let now = Instant::now();
        let slots = self.slots.lock().expect("in-flight registry poisoned");
        for entry in slots.iter().flatten() {
            if let Some(deadline) = entry.deadline {
                if now >= deadline && !entry.timed_out.load(Ordering::Acquire) {
                    entry.timed_out.store(true, Ordering::Release);
                    entry.token.cancel();
                }
            }
        }
    }
}

struct InFlightGuard<'a> {
    registry: &'a InFlightRegistry,
    key: usize,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut slots = self
            .registry
            .slots
            .lock()
            .expect("in-flight registry poisoned");
        slots[self.key] = None;
    }
}

/// Renders a panic payload as text, preferring the original message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn tokens_are_hierarchical_and_sticky() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        root.cancel();
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled());
        // Cancelling a child never propagates upward.
        let root = CancelToken::new();
        let child = root.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!root.is_cancelled());
    }

    #[test]
    fn ok_batch_matches_plain_map() {
        let reports = Supervisor::new(4).map_supervised((0..16u64).collect(), |&x, _| x * x);
        assert_eq!(reports.len(), 16);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.outcome.ok(), Some(&((i as u64) * (i as u64))));
            assert_eq!(report.attempts, 1);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let reports: Vec<JobReport<u32>> =
            Supervisor::new(4).map_supervised(Vec::new(), |&x: &u32, _| x);
        assert!(reports.is_empty());
    }

    #[test]
    fn panic_is_quarantined_not_propagated() {
        let reports = Supervisor::new(2).map_supervised((0..8u32).collect(), |&x, _| {
            if x == 3 {
                panic!("boom at {x}");
            }
            x
        });
        assert_eq!(reports.len(), 8);
        match &reports[3].outcome {
            JobOutcome::Panicked { message } => assert_eq!(message, "boom at 3"),
            other => panic!("expected quarantined panic, got {other:?}"),
        }
        let ok = reports.iter().filter(|r| r.outcome.is_ok()).count();
        assert_eq!(ok, 7, "every other job should complete");
    }

    /// A panic in the *last* job of the batch must still be quarantined
    /// (no off-by-one in the pull loop or result collection).
    #[test]
    fn panic_in_last_job_is_quarantined() {
        let reports = Supervisor::new(3).map_supervised((0..5u32).collect(), |&x, _| {
            if x == 4 {
                panic!("last job");
            }
            x
        });
        assert_eq!(reports[4].outcome.label(), "panicked");
        assert!(reports[..4].iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn hung_job_times_out_and_batch_completes() {
        let supervisor = Supervisor::new(2).with_deadline(Duration::from_millis(50));
        let started = Instant::now();
        let reports = supervisor.map_supervised((0..4u32).collect(), |&x, _| {
            if x == 1 {
                // Non-cooperative hang: ignores its token entirely.
                std::thread::sleep(Duration::from_secs(30));
            }
            x
        });
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "hung job stalled the batch"
        );
        match reports[1].outcome {
            JobOutcome::TimedOut { deadline } => {
                assert_eq!(deadline, Duration::from_millis(50));
            }
            ref other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(
            reports.iter().filter(|r| r.outcome.is_ok()).count(),
            3,
            "other jobs should finish"
        );
    }

    /// Batch cancellation: unstarted jobs report `Cancelled`, the call
    /// returns promptly (bounded by the worker poll interval — the
    /// "journal interval" of a supervised campaign), and in-flight
    /// non-cooperative jobs are abandoned.
    #[test]
    fn cancellation_latency_is_bounded() {
        let supervisor = Supervisor::new(4);
        let token = supervisor.cancel_token().clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let started = Instant::now();
        // 64 jobs of 10s each on 4 workers would run ~160s uncancelled.
        let reports = supervisor.map_supervised((0..64u32).collect(), |_, ctx| {
            let wake = Instant::now() + Duration::from_secs(10);
            while Instant::now() < wake && !ctx.token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let elapsed = started.elapsed();
        canceller.join().unwrap();
        // Generous wall-clock bound: cancel at 50ms + poll slack; CI
        // boxes are slow, so allow seconds, not the 160s of a runaway.
        assert!(elapsed < Duration::from_secs(10), "cancel took {elapsed:?}");
        let cancelled = reports
            .iter()
            .filter(|r| r.outcome.label() == "cancelled")
            .count();
        let ok = reports.iter().filter(|r| r.outcome.is_ok()).count();
        assert_eq!(cancelled + ok, 64);
        assert!(cancelled > 0, "most of the batch should be cancelled");
    }

    #[test]
    fn cooperative_jobs_see_their_token_and_finish_ok() {
        let supervisor = Supervisor::new(2);
        supervisor.cancel_token().cancel();
        // Already-cancelled batch: nothing runs.
        let reports = supervisor.map_supervised(vec![1u32, 2], |&x, _| x);
        assert!(reports
            .iter()
            .all(|r| matches!(r.outcome, JobOutcome::Cancelled)));
    }

    #[test]
    fn transient_failures_retry_with_attempt_count() {
        let supervisor = Supervisor::new(2)
            .with_retries(3, Duration::from_millis(1))
            .with_transient_filter(|failure| {
                matches!(failure, JobFailure::Panicked { message } if message.contains("transient"))
            });
        let reports = supervisor.map_supervised(vec![0u32, 1, 2], |&x, ctx| {
            match x {
                // Heals on the second attempt.
                0 if ctx.attempt < 2 => panic!("transient glitch"),
                // Never transient: must not be retried.
                1 => panic!("fatal"),
                _ => {}
            }
            x
        });
        assert!(reports[0].outcome.is_ok());
        assert_eq!(reports[0].attempts, 2);
        assert_eq!(reports[1].outcome.label(), "panicked");
        assert_eq!(reports[1].attempts, 1, "fatal failures must not retry");
        assert!(reports[2].outcome.is_ok());
    }

    #[test]
    fn retry_budget_is_bounded() {
        let supervisor = Supervisor::new(1).with_retries(3, Duration::from_millis(1));
        let reports =
            supervisor.map_supervised(vec![0u32], |_, _| -> u32 { panic!("always fails") });
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(reports[0].outcome.label(), "panicked");
    }

    /// Nested pools: a supervised job may fan out across a scoped
    /// [`Pool`] of its own (the experiments binary does exactly this —
    /// each experiment's inner suite runs on a nested pool).
    #[test]
    fn supervised_jobs_can_nest_scoped_pools() {
        let reports = Supervisor::new(2).map_supervised(vec![4u64, 5, 6], |&n, _| {
            crate::with_default_jobs(2, || {
                Pool::with_default_jobs()
                    .map((0..n).collect(), |x| x + 1)
                    .into_iter()
                    .sum::<u64>()
            })
        });
        let sums: Vec<u64> = reports
            .into_iter()
            .map(|r| r.outcome.into_ok().unwrap())
            .collect();
        assert_eq!(sums, vec![10, 15, 21]);
    }

    /// A nested *supervised* batch inside a supervised job: panics in
    /// the inner batch stay quarantined there.
    #[test]
    fn supervised_batches_nest() {
        let reports = Supervisor::new(2).map_supervised(vec![0u32, 1], |&outer, _| {
            let inner = Supervisor::new(2).map_supervised(vec![0u32, 1, 2], move |&x, _| {
                if outer == 1 && x == 1 {
                    panic!("inner");
                }
                x
            });
            inner.iter().filter(|r| r.outcome.is_ok()).count()
        });
        assert_eq!(reports[0].outcome.ok(), Some(&3));
        assert_eq!(reports[1].outcome.ok(), Some(&2));
    }

    #[test]
    fn zero_worker_supervisor_rejected() {
        assert!(catch_unwind(|| Supervisor::new(0)).is_err());
        assert!(
            catch_unwind(|| Supervisor::new(1).with_retries(0, Duration::from_millis(1))).is_err()
        );
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(JobOutcome::Ok(1u8).label(), "ok");
        assert_eq!(
            JobOutcome::<u8>::Panicked {
                message: String::new()
            }
            .label(),
            "panicked"
        );
        assert_eq!(
            JobOutcome::<u8>::TimedOut {
                deadline: Duration::ZERO
            }
            .label(),
            "timed-out"
        );
        assert_eq!(JobOutcome::<u8>::Cancelled.label(), "cancelled");
    }

    #[test]
    fn reports_come_back_in_submission_order() {
        let reports = Supervisor::new(8).map_supervised((0..32u64).collect(), |&x, _| {
            std::thread::sleep(Duration::from_millis(32 - x));
            x
        });
        let values: Vec<u64> = reports
            .into_iter()
            .map(|r| r.outcome.into_ok().unwrap())
            .collect();
        assert_eq!(values, (0..32).collect::<Vec<_>>());
    }
}
