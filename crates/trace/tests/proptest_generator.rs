//! Property tests over the synthetic workload generator: for any valid
//! profile, the emitted stream must respect the profile's promises.

use proptest::prelude::*;

use mapg_trace::{
    AccessKind, EventSource, Phase, PhaseSchedule, SyntheticWorkload, TraceEvent, TraceStats,
    WorkloadProfile,
};

fn profiles() -> impl Strategy<Value = WorkloadProfile> {
    (
        5.0f64..500.0,
        14u32..26,
        0.0f64..0.99,
        1u32..16,
        0.0f64..1.0,
        0.0f64..1.0,
        0.5f64..4.0,
    )
        .prop_map(|(rate, ws_log2, loc, regions, chase, wr, ipc)| {
            WorkloadProfile::builder("prop")
                .mem_refs_per_kilo_inst(rate)
                .working_set_bytes(1u64 << ws_log2)
                .spatial_locality(loc)
                .hot_regions(regions)
                .pointer_chase_fraction(chase)
                .write_fraction(wr)
                .compute_ipc(ipc)
                .phases(PhaseSchedule::stationary(Phase::Balanced))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addresses_stay_inside_the_working_set(
        profile in profiles(),
        seed in any::<u64>(),
    ) {
        let ws = profile.working_set_bytes();
        let mut workload = SyntheticWorkload::new(&profile, seed);
        let mut seen = 0;
        while seen < 500 {
            if let TraceEvent::MemAccess(access) = workload.next_event() {
                prop_assert!(access.addr < ws, "{:#x} >= {ws:#x}", access.addr);
                seen += 1;
            }
        }
    }

    #[test]
    fn measured_rates_track_the_profile(
        profile in profiles(),
        seed in any::<u64>(),
    ) {
        let mut workload = SyntheticWorkload::new(&profile, seed);
        let stats = TraceStats::collect(&mut workload, 300_000);
        // Reference rate within 15% relative (stationary balanced phase).
        let expected = profile.mem_refs_per_kilo_inst();
        let measured = stats.refs_per_kilo_inst();
        prop_assert!(
            (measured - expected).abs() / expected < 0.15,
            "rate {measured} vs expected {expected}"
        );
        // Dependent fraction within 10 points absolute.
        prop_assert!(
            (stats.dependent_fraction() - profile.pointer_chase_fraction())
                .abs()
                < 0.10
        );
        // Store fraction similar.
        let store_fraction = if stats.mem_refs == 0 {
            0.0
        } else {
            stats.stores as f64 / stats.mem_refs as f64
        };
        prop_assert!(
            (store_fraction - profile.write_fraction()).abs() < 0.10
        );
    }

    #[test]
    fn stream_is_deterministic_per_seed(
        profile in profiles(),
        seed in any::<u64>(),
    ) {
        let mut a = SyntheticWorkload::new(&profile, seed);
        let mut b = SyntheticWorkload::new(&profile, seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn compute_quanta_are_consistent(
        profile in profiles(),
        seed in any::<u64>(),
    ) {
        let mut workload = SyntheticWorkload::new(&profile, seed);
        for _ in 0..2_000 {
            match workload.next_event() {
                TraceEvent::Compute { cycles, instructions } => {
                    prop_assert!(cycles >= 1);
                    prop_assert!(instructions >= 1);
                    // A quantum can never exceed 1 cycle per instruction
                    // at IPC >= 1, nor fall below 1/IPC rounded up.
                    let expected = (instructions as f64
                        / profile.compute_ipc())
                        .ceil() as u64;
                    prop_assert_eq!(cycles, expected.max(1));
                }
                TraceEvent::MemAccess(access) => {
                    prop_assert!(matches!(
                        access.kind,
                        AccessKind::Load | AccessKind::Store
                    ));
                }
                TraceEvent::Idle { .. } => prop_assert!(
                    false,
                    "profiles without idle injection must not emit Idle"
                ),
            }
        }
    }
}
