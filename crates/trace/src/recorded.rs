//! Recorded traces: capture a workload's event stream once, replay it
//! exactly.
//!
//! Recording serves two purposes a downstream user hits quickly:
//! regression corpora (pin the exact stream a bug reproduced on) and
//! cross-tool interchange (the text format is trivially producible from
//! a real pintool/DynamoRIO trace, which is how recorded SPEC traces
//! would enter this harness).
//!
//! # Format
//!
//! One event per line, `#`-prefixed comments, a `!` header line first:
//!
//! ```text
//! ! mapg-trace v1 name=mcf_like
//! C 120 240          # compute: cycles instructions
//! L 1a2b40 400010    # load:  addr_hex pc_hex
//! Ld 1a2b80 400014   # load, dependent on previous miss
//! S 7fe0 400018      # store: addr_hex pc_hex
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::event::{AccessKind, MemAccess, TraceEvent};
use crate::generator::EventSource;

/// A finite, exactly-reproducible event sequence.
///
/// ```
/// use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile, EventSource};
///
/// let profile = WorkloadProfile::mixed("capture");
/// let mut live = SyntheticWorkload::new(&profile, 3);
/// let trace = RecordedTrace::record(&mut live, 10_000);
/// assert!(trace.instructions() >= 10_000);
///
/// // Replay produces the identical prefix.
/// let mut fresh = SyntheticWorkload::new(&profile, 3);
/// let mut replay = trace.replay();
/// for _ in 0..100 {
///     assert_eq!(replay.next_event(), fresh.next_event());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    name: String,
    events: Vec<TraceEvent>,
    instructions: u64,
}

impl RecordedTrace {
    /// Captures events from `source` until at least `instructions` have
    /// been covered.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn record<S: EventSource>(source: &mut S, instructions: u64) -> Self {
        assert!(instructions > 0, "must record at least one instruction");
        let mut events = Vec::new();
        let mut covered = 0;
        while covered < instructions {
            let event = source.next_event();
            covered += event.instructions();
            events.push(event);
        }
        RecordedTrace {
            name: source.name().to_owned(),
            events,
            instructions: covered,
        }
    }

    /// Builds a trace directly from events (for tests and hand-authored
    /// regression inputs).
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty.
    pub fn from_events(name: impl Into<String>, events: Vec<TraceEvent>) -> Self {
        assert!(!events.is_empty(), "a trace needs at least one event");
        let instructions = events.iter().map(TraceEvent::instructions).sum();
        RecordedTrace {
            name: name.into(),
            events,
            instructions,
        }
    }

    /// The trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total instructions covered by the recording.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Returns a copy with every run of consecutive `Compute` events merged
    /// into one event carrying the summed cycles and instructions.
    ///
    /// Compute events touch no shared state, so a coalesced trace drives a
    /// core through the identical timeline with fewer events — the offline
    /// complement of the core's online compute batching. Real pintool-style
    /// recordings are the main beneficiary: they often emit one tiny
    /// compute quantum per basic block. Stall-relevant events (memory
    /// accesses, idle periods) are never merged or reordered.
    pub fn coalesce_compute(&self) -> Self {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(self.events.len());
        for &event in &self.events {
            if let (
                TraceEvent::Compute {
                    cycles,
                    instructions,
                },
                Some(TraceEvent::Compute {
                    cycles: acc_cycles,
                    instructions: acc_instructions,
                }),
            ) = (event, events.last_mut())
            {
                *acc_cycles += cycles;
                *acc_instructions += instructions;
            } else {
                events.push(event);
            }
        }
        RecordedTrace {
            name: self.name.clone(),
            events,
            instructions: self.instructions,
        }
    }

    /// Returns a copy with every `Compute` event split into quanta of at
    /// most `quantum` instructions, cycles apportioned proportionally —
    /// the inverse of [`RecordedTrace::coalesce_compute`].
    ///
    /// Pintool/DynamoRIO-style frontends emit one compute quantum per
    /// basic block (conventionally ~4 instructions), where the synthetic
    /// generator emits one coarse event per inter-access gap. Quantizing a
    /// coarse recording reproduces that fine-grained trace shape — the
    /// workload the cluster's compute batching is designed for — without
    /// needing a real binary frontend. Totals are preserved exactly: the
    /// quanta of one event sum to its original cycles and instructions,
    /// and non-compute events are never moved, so a core driven through
    /// the quantized trace follows the identical timeline.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn quantize_compute(&self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be at least one instruction");
        let mut events = Vec::with_capacity(self.events.len());
        for &event in &self.events {
            if let TraceEvent::Compute {
                mut cycles,
                mut instructions,
            } = event
            {
                while instructions > quantum {
                    // Proportional share of the remaining cycles, clamped
                    // so the tail never underflows; any rounding remainder
                    // lands on the final quantum.
                    let share = (cycles * quantum / instructions).max(1).min(cycles);
                    events.push(TraceEvent::Compute {
                        cycles: share,
                        instructions: quantum,
                    });
                    cycles -= share;
                    instructions -= quantum;
                }
                events.push(TraceEvent::Compute {
                    cycles,
                    instructions,
                });
            } else {
                events.push(event);
            }
        }
        RecordedTrace {
            name: self.name.clone(),
            events,
            instructions: self.instructions,
        }
    }

    /// An [`EventSource`] replaying this trace (cyclically — streams are
    /// unbounded by contract, so the replay wraps around at the end and a
    /// consumer that runs longer than the recording sees it repeated).
    pub fn replay(&self) -> Replay<'_> {
        Replay {
            trace: self,
            index: 0,
        }
    }

    /// Serializes in the text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`. Note that a `&mut W` can be
    /// passed for any `W: Write`.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(w, "! mapg-trace v1 name={}", self.name)?;
        for event in &self.events {
            match event {
                TraceEvent::Compute {
                    cycles,
                    instructions,
                } => writeln!(w, "C {cycles} {instructions}")?,
                TraceEvent::MemAccess(access) => {
                    let tag = match (access.kind, access.dependent) {
                        (AccessKind::Load, false) => "L",
                        (AccessKind::Load, true) => "Ld",
                        (AccessKind::Store, false) => "S",
                        (AccessKind::Store, true) => "Sd",
                    };
                    writeln!(w, "{tag} {:x} {:x}", access.addr, access.pc)?;
                }
                TraceEvent::Idle { cycles } => writeln!(w, "I {cycles}")?,
            }
        }
        w.flush()
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on malformed input (with the offending
    /// line number) and propagates I/O errors as
    /// [`ParseTraceError::Io`].
    pub fn read_from<R: Read>(reader: R) -> Result<Self, ParseTraceError> {
        let reader = BufReader::new(reader);
        let mut name = String::from("unnamed");
        let mut events = Vec::new();
        for (index, line) in reader.lines().enumerate() {
            let line = line.map_err(ParseTraceError::Io)?;
            let number = index + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('!') {
                if let Some(n) = header
                    .split_whitespace()
                    .find_map(|tok| tok.strip_prefix("name="))
                {
                    name = n.to_owned();
                }
                continue;
            }
            events.push(Self::parse_event(line, number)?);
        }
        if events.is_empty() {
            return Err(ParseTraceError::Empty);
        }
        Ok(RecordedTrace::from_events(name, events))
    }

    fn parse_event(line: &str, number: usize) -> Result<TraceEvent, ParseTraceError> {
        let bad = |reason: &'static str| ParseTraceError::Malformed {
            line: number,
            reason,
        };
        let mut parts = line.split_whitespace();
        let tag = parts.next().ok_or_else(|| bad("empty line"))?;
        match tag {
            "C" => {
                let cycles = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("bad cycle count"))?;
                let instructions = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("bad instruction count"))?;
                Ok(TraceEvent::Compute {
                    cycles,
                    instructions,
                })
            }
            "I" => {
                let cycles = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("bad idle cycle count"))?;
                Ok(TraceEvent::Idle { cycles })
            }
            "L" | "Ld" | "S" | "Sd" => {
                let addr = parts
                    .next()
                    .and_then(|t| u64::from_str_radix(t, 16).ok())
                    .ok_or_else(|| bad("bad address"))?;
                let pc = parts
                    .next()
                    .and_then(|t| u64::from_str_radix(t, 16).ok())
                    .ok_or_else(|| bad("bad pc"))?;
                Ok(TraceEvent::MemAccess(MemAccess {
                    addr,
                    pc,
                    kind: if tag.starts_with('L') {
                        AccessKind::Load
                    } else {
                        AccessKind::Store
                    },
                    dependent: tag.ends_with('d'),
                }))
            }
            _ => Err(bad("unknown event tag")),
        }
    }

    /// Saves to a file in the text format.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(File::create(path)?)
    }

    /// Loads from a file in the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on open, read or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ParseTraceError> {
        let file = File::open(path).map_err(ParseTraceError::Io)?;
        Self::read_from(file)
    }
}

/// Replaying view over a [`RecordedTrace`].
#[derive(Debug, Clone)]
pub struct Replay<'a> {
    trace: &'a RecordedTrace,
    index: usize,
}

impl EventSource for Replay<'_> {
    #[inline]
    fn next_event(&mut self) -> TraceEvent {
        let event = self.trace.events[self.index];
        // Wrap with a compare, not `%`: replay feeds the cores' innermost
        // fetch loop, where a hardware divide per event is measurable.
        self.index += 1;
        if self.index == self.trace.events.len() {
            self.index = 0;
        }
        event
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

impl Iterator for Replay<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        Some(self.next_event())
    }
}

/// Error parsing a recorded trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// The input contained no events.
    Empty,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace at line {line}: {reason}")
            }
            ParseTraceError::Empty => f.write_str("trace contains no events"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticWorkload;
    use crate::profile::WorkloadProfile;

    fn sample() -> RecordedTrace {
        let profile = WorkloadProfile::mem_bound("roundtrip");
        let mut workload = SyntheticWorkload::new(&profile, 77);
        RecordedTrace::record(&mut workload, 5_000)
    }

    #[test]
    fn quantize_preserves_totals_and_order() {
        let trace = sample();
        let quantized = trace.quantize_compute(4);
        let totals = |t: &RecordedTrace| {
            t.events().iter().fold((0u64, 0u64), |(c, i), e| match e {
                TraceEvent::Compute {
                    cycles,
                    instructions,
                } => (c + cycles, i + instructions),
                _ => (c, i),
            })
        };
        assert_eq!(totals(&trace), totals(&quantized));
        assert!(quantized.events().len() > trace.events().len());
        // Every quantum respects the bound and non-compute events keep
        // their relative order.
        let non_compute = |t: &RecordedTrace| {
            t.events()
                .iter()
                .filter(|e| !matches!(e, TraceEvent::Compute { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        for event in quantized.events() {
            if let TraceEvent::Compute { instructions, .. } = event {
                assert!(*instructions <= 4);
            }
        }
        assert_eq!(non_compute(&trace), non_compute(&quantized));
        // Coalescing is the exact inverse up to compute-run merging.
        assert_eq!(
            quantized.coalesce_compute().events(),
            trace.coalesce_compute().events()
        );
    }

    #[test]
    fn quantize_handles_cycle_starved_blocks() {
        // Fewer cycles than quanta: the tail quanta must absorb zero
        // cycles rather than underflow.
        let trace = RecordedTrace::from_events(
            "starved",
            vec![TraceEvent::Compute {
                cycles: 2,
                instructions: 100,
            }],
        );
        let quantized = trace.quantize_compute(4);
        let (cycles, instructions) =
            quantized
                .events()
                .iter()
                .fold((0u64, 0u64), |(c, i), e| match e {
                    TraceEvent::Compute {
                        cycles,
                        instructions,
                    } => (c + cycles, i + instructions),
                    _ => (c, i),
                });
        assert_eq!((cycles, instructions), (2, 100));
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = sample().quantize_compute(0);
    }

    #[test]
    fn record_covers_requested_instructions() {
        let trace = sample();
        assert!(trace.instructions() >= 5_000);
        assert_eq!(trace.name(), "roundtrip");
        assert!(!trace.events().is_empty());
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let trace = sample();
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("in-memory write");
        let parsed = RecordedTrace::read_from(buffer.as_slice()).expect("parse back");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn replay_wraps_around() {
        let events = vec![
            TraceEvent::Compute {
                cycles: 1,
                instructions: 2,
            },
            TraceEvent::MemAccess(MemAccess {
                addr: 0x40,
                pc: 0x1000,
                kind: AccessKind::Load,
                dependent: true,
            }),
        ];
        let trace = RecordedTrace::from_events("tiny", events.clone());
        let mut replay = trace.replay();
        for round in 0..3 {
            for expected in &events {
                assert_eq!(replay.next_event(), *expected, "round {round}");
            }
        }
    }

    #[test]
    fn parse_reports_line_numbers() {
        let input = "! mapg-trace v1 name=x\nC 10 20\nL zz 4\n";
        match RecordedTrace::read_from(input.as_bytes()) {
            Err(ParseTraceError::Malformed { line, reason }) => {
                assert_eq!(line, 3);
                assert_eq!(reason, "bad address");
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unknown_tags() {
        let input = "X 1 2\n";
        assert!(matches!(
            RecordedTrace::read_from(input.as_bytes()),
            Err(ParseTraceError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn parse_rejects_empty_input() {
        let input = "# only a comment\n";
        assert!(matches!(
            RecordedTrace::read_from(input.as_bytes()),
            Err(ParseTraceError::Empty)
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = "\n# hello\n! mapg-trace v1 name=commented\nC 5 5\n\nS ff 10\n";
        let trace = RecordedTrace::read_from(input.as_bytes()).expect("parses");
        assert_eq!(trace.name(), "commented");
        assert_eq!(trace.events().len(), 2);
    }

    #[test]
    fn dependent_flags_round_trip() {
        let events = vec![
            TraceEvent::MemAccess(MemAccess {
                addr: 0x100,
                pc: 0x4,
                kind: AccessKind::Load,
                dependent: true,
            }),
            TraceEvent::MemAccess(MemAccess {
                addr: 0x200,
                pc: 0x8,
                kind: AccessKind::Store,
                dependent: true,
            }),
        ];
        let trace = RecordedTrace::from_events("deps", events);
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).expect("write");
        let text = String::from_utf8(buffer.clone()).expect("utf8");
        assert!(text.contains("Ld 100 4"), "{text}");
        assert!(text.contains("Sd 200 8"), "{text}");
        let parsed = RecordedTrace::read_from(buffer.as_slice()).expect("parse");
        assert_eq!(parsed.events(), trace.events());
    }

    #[test]
    fn file_save_load_round_trip() {
        let trace = sample();
        let path = std::env::temp_dir().join("mapg_trace_roundtrip.trc");
        trace.save(&path).expect("save");
        let loaded = RecordedTrace::load(&path).expect("load");
        assert_eq!(loaded, trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn coalesce_merges_compute_runs_only() {
        let load = TraceEvent::MemAccess(MemAccess {
            addr: 0x40,
            pc: 0x1000,
            kind: AccessKind::Load,
            dependent: false,
        });
        let compute = |cycles, instructions| TraceEvent::Compute {
            cycles,
            instructions,
        };
        let trace = RecordedTrace::from_events(
            "merge",
            vec![
                compute(1, 2),
                compute(3, 4),
                compute(5, 6),
                load,
                TraceEvent::Idle { cycles: 9 },
                compute(7, 8),
                compute(9, 10),
            ],
        );
        let merged = trace.coalesce_compute();
        assert_eq!(
            merged.events(),
            &[
                compute(9, 12),
                load,
                TraceEvent::Idle { cycles: 9 },
                compute(16, 18),
            ]
        );
        assert_eq!(merged.instructions(), trace.instructions());
        assert_eq!(merged.name(), trace.name());
    }

    #[test]
    fn coalesce_is_identity_without_adjacent_computes() {
        let trace = sample();
        let merged = trace.coalesce_compute();
        // The synthetic generator never emits back-to-back computes, so
        // coalescing must be a no-op on its recordings.
        assert_eq!(merged, trace);
    }

    #[test]
    fn error_display_forms() {
        let malformed = ParseTraceError::Malformed {
            line: 7,
            reason: "bad pc",
        };
        assert!(malformed.to_string().contains("line 7"));
        assert!(ParseTraceError::Empty.to_string().contains("no events"));
    }
}
