//! The synthetic workload generator: turns a [`WorkloadProfile`] into a
//! deterministic, unbounded [`TraceEvent`] stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::address::AddressStream;
use crate::event::{AccessKind, MemAccess, TraceEvent};
use crate::phase::PhaseModel;
use crate::profile::WorkloadProfile;

/// A source of trace events, as consumed by the core model.
///
/// The trait exists so the core model is generic over where its instruction
/// stream comes from ([`SyntheticWorkload`] in this workspace, recorded
/// traces in a downstream integration). Streams are unbounded; the consumer
/// decides when to stop (e.g. after N instructions).
pub trait EventSource {
    /// Produces the next event. Never exhausts.
    fn next_event(&mut self) -> TraceEvent;

    /// A human-readable name for reports.
    fn name(&self) -> &str;
}

/// Deterministic synthetic workload driven by a [`WorkloadProfile`].
///
/// The stream alternates compute quanta with memory references. The gap
/// between references (in instructions) is sampled from a geometric
/// distribution whose mean is set by the profile's reference rate, modulated
/// by the current program [phase](crate::Phase). Identical `(profile, seed)`
/// pairs produce identical streams.
///
/// ```
/// use mapg_trace::{EventSource, SyntheticWorkload, WorkloadProfile};
///
/// let profile = WorkloadProfile::mixed("demo");
/// let mut a = SyntheticWorkload::new(&profile, 3);
/// let mut b = SyntheticWorkload::new(&profile, 3);
/// for _ in 0..100 {
///     assert_eq!(a.next_event(), b.next_event());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    profile: WorkloadProfile,
    rng: StdRng,
    phases: PhaseModel,
    addresses: AddressStream,
    /// Synthetic program counter, cycled over a small set of "instruction
    /// addresses" so PC-indexed predictors see realistic reuse.
    pc_wheel: u64,
    /// A memory access staged to be emitted after the current compute
    /// quantum.
    staged_access: Option<MemAccess>,
    /// Instructions left until the next injected idle period (when the
    /// profile configures idle injection).
    instructions_to_idle: Option<u64>,
}

impl SyntheticWorkload {
    /// Number of distinct synthetic PCs in the wheel.
    const PC_COUNT: u64 = 64;
    /// Byte distance between synthetic PCs.
    const PC_STRIDE: u64 = 4;

    /// Creates the workload for `profile` with the given RNG seed.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let addresses = AddressStream::new(
            profile.working_set_bytes(),
            profile.spatial_locality(),
            profile.hot_regions(),
        );
        SyntheticWorkload {
            name: profile.name().to_owned(),
            instructions_to_idle: profile
                .idle_injection()
                .map(|spec| spec.mean_interval_instructions),
            profile: profile.clone(),
            rng: StdRng::seed_from_u64(seed),
            phases: PhaseModel::new(profile.phases().clone()),
            addresses,
            pc_wheel: 0,
            staged_access: None,
        }
    }

    /// The profile this workload was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Samples the instruction gap to the next memory reference under the
    /// current phase (geometric distribution, mean `1000/rate - 1`).
    fn sample_gap(&mut self) -> u64 {
        let rate =
            self.profile.mem_refs_per_kilo_inst() * self.phases.current().intensity_multiplier();
        let rate = rate.min(1000.0);
        let mean_gap = (1000.0 / rate - 1.0).max(0.0);
        if mean_gap < 1e-9 {
            return 0;
        }
        // Geometric via inverse transform on the exponential approximation;
        // adequate and cheap for mean gaps in the 2..200 range we use.
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        (-mean_gap * u.ln()).round() as u64
    }

    fn make_access(&mut self) -> MemAccess {
        let (addr, pattern) = self.addresses.next_addr(&mut self.rng);
        let kind = if self.rng.gen::<f64>() < self.profile.write_fraction() {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let dependent = self.rng.gen::<f64>() < self.profile.pointer_chase_fraction();
        self.pc_wheel = (self.pc_wheel + 1) % Self::PC_COUNT;
        // Real programs issue pointer chases, streaming sweeps and random
        // probes from *different load instructions*; a PC-indexed
        // predictor exploits exactly that correlation. Partition the
        // synthetic PC space by access class so the same structure exists
        // here: class base + a small wheel within the class.
        let class_base = match (dependent, pattern) {
            (true, _) => 0x40_0000,
            (false, crate::AddressPattern::Sequential) => 0x41_0000,
            (false, _) => 0x42_0000,
        };
        MemAccess {
            addr,
            pc: class_base + (self.pc_wheel % (Self::PC_COUNT / 4)) * Self::PC_STRIDE,
            kind,
            dependent,
        }
    }
}

impl EventSource for SyntheticWorkload {
    fn next_event(&mut self) -> TraceEvent {
        // Injected idle periods take precedence; they model the program
        // blocking (I/O, scheduler) regardless of where it was.
        if let (Some(remaining), Some(spec)) =
            (self.instructions_to_idle, self.profile.idle_injection())
        {
            if remaining == 0 {
                // Re-roll the next interval around the configured mean.
                let u: f64 = self.rng.gen::<f64>().max(1e-12);
                let next = (-(spec.mean_interval_instructions as f64) * u.ln()).max(1.0) as u64;
                self.instructions_to_idle = Some(next);
                return TraceEvent::Idle {
                    cycles: spec.duration_cycles,
                };
            }
        }
        if let Some(access) = self.staged_access.take() {
            self.consume_instructions(1);
            self.phases.retire(1, &mut self.rng);
            return TraceEvent::MemAccess(access);
        }
        let gap = self.sample_gap();
        let access = self.make_access();
        if gap == 0 {
            self.consume_instructions(1);
            self.phases.retire(1, &mut self.rng);
            return TraceEvent::MemAccess(access);
        }
        self.staged_access = Some(access);
        let cycles = ((gap as f64 / self.profile.compute_ipc()).ceil() as u64).max(1);
        self.consume_instructions(gap);
        self.phases.retire(gap, &mut self.rng);
        TraceEvent::Compute {
            cycles,
            instructions: gap,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl SyntheticWorkload {
    /// Counts retired instructions toward the next injected idle period.
    fn consume_instructions(&mut self, count: u64) {
        if let Some(remaining) = &mut self.instructions_to_idle {
            *remaining = remaining.saturating_sub(count);
        }
    }
}

impl Iterator for SyntheticWorkload {
    type Item = TraceEvent;

    /// Yields the unbounded event stream; never returns `None`.
    fn next(&mut self) -> Option<TraceEvent> {
        Some(self.next_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kinds(workload: &mut SyntheticWorkload, instructions: u64) -> (u64, u64) {
        let mut insts = 0;
        let mut refs = 0;
        while insts < instructions {
            let event = workload.next_event();
            insts += event.instructions();
            if event.as_mem_access().is_some() {
                refs += 1;
            }
        }
        (insts, refs)
    }

    #[test]
    fn reference_rate_tracks_profile() {
        // Stationary balanced phase for a clean measurement.
        let profile = WorkloadProfile::builder("rate_check")
            .mem_refs_per_kilo_inst(100.0)
            .phases(crate::PhaseSchedule::stationary(crate::Phase::Balanced))
            .build();
        let mut w = SyntheticWorkload::new(&profile, 123);
        let (insts, refs) = count_kinds(&mut w, 2_000_000);
        let measured = refs as f64 * 1000.0 / insts as f64;
        assert!(
            (measured - 100.0).abs() < 10.0,
            "measured {measured} refs/ki, expected ~100"
        );
    }

    #[test]
    fn mem_bound_much_denser_than_compute_bound() {
        let mut mem = SyntheticWorkload::new(&WorkloadProfile::mem_bound("m"), 1);
        let mut cpu = SyntheticWorkload::new(&WorkloadProfile::compute_bound("c"), 1);
        let (mi, mr) = count_kinds(&mut mem, 1_000_000);
        let (ci, cr) = count_kinds(&mut cpu, 1_000_000);
        let mem_rate = mr as f64 / mi as f64;
        let cpu_rate = cr as f64 / ci as f64;
        assert!(
            mem_rate > 3.0 * cpu_rate,
            "mem {mem_rate} vs cpu {cpu_rate}"
        );
    }

    #[test]
    fn deterministic_across_clones_of_seed() {
        let profile = WorkloadProfile::mem_bound("det");
        let mut a = SyntheticWorkload::new(&profile, 42);
        let mut b = SyntheticWorkload::new(&profile, 42);
        for _ in 0..10_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let profile = WorkloadProfile::mem_bound("div");
        let mut a = SyntheticWorkload::new(&profile, 1);
        let mut b = SyntheticWorkload::new(&profile, 2);
        let same = (0..1000)
            .filter(|_| a.next_event() == b.next_event())
            .count();
        assert!(same < 1000, "independent seeds produced identical streams");
    }

    #[test]
    fn compute_quanta_respect_ipc() {
        let profile = WorkloadProfile::builder("ipc")
            .compute_ipc(2.0)
            .mem_refs_per_kilo_inst(50.0)
            .build();
        let mut w = SyntheticWorkload::new(&profile, 9);
        for _ in 0..1000 {
            if let TraceEvent::Compute {
                cycles,
                instructions,
            } = w.next_event()
            {
                let expected = (instructions as f64 / 2.0).ceil() as u64;
                assert_eq!(cycles, expected.max(1));
            }
        }
    }

    #[test]
    fn iterator_is_unbounded() {
        let mut w = SyntheticWorkload::new(&WorkloadProfile::mixed("it"), 5);
        assert!(w.by_ref().take(100).count() == 100);
        assert!(w.next().is_some());
    }

    #[test]
    fn pcs_come_from_small_wheel() {
        let mut w = SyntheticWorkload::new(&WorkloadProfile::mem_bound("pc"), 8);
        let mut pcs = std::collections::HashSet::new();
        let mut seen = 0;
        while seen < 1000 {
            if let TraceEvent::MemAccess(access) = w.next_event() {
                pcs.insert(access.pc);
                seen += 1;
            }
        }
        assert!(pcs.len() <= SyntheticWorkload::PC_COUNT as usize);
        assert!(pcs.len() > 1);
    }

    #[test]
    fn idle_injection_emits_idle_periods_at_the_configured_rate() {
        let profile = WorkloadProfile::builder("idle")
            .mem_refs_per_kilo_inst(50.0)
            .idle_injection(crate::IdleInjection::new(10_000, 50_000))
            .build();
        let mut w = SyntheticWorkload::new(&profile, 5);
        let mut idles = 0u64;
        let mut insts = 0u64;
        while insts < 1_000_000 {
            match w.next_event() {
                TraceEvent::Idle { cycles } => {
                    assert_eq!(cycles, 50_000);
                    idles += 1;
                }
                other => insts += other.instructions(),
            }
        }
        let expected = 1_000_000 / 10_000;
        assert!(
            idles as f64 > expected as f64 * 0.7 && (idles as f64) < expected as f64 * 1.4,
            "idle periods {idles}, expected ~{expected}"
        );
    }

    #[test]
    fn no_injection_means_no_idle_events() {
        let mut w = SyntheticWorkload::new(&WorkloadProfile::mem_bound("ni"), 5);
        for _ in 0..10_000 {
            assert!(!matches!(w.next_event(), TraceEvent::Idle { .. }));
        }
    }

    #[test]
    fn store_fraction_matches_profile() {
        let profile = WorkloadProfile::builder("wr")
            .write_fraction(0.25)
            .mem_refs_per_kilo_inst(500.0)
            .build();
        let mut w = SyntheticWorkload::new(&profile, 6);
        let mut stores = 0u32;
        let mut total = 0u32;
        while total < 20_000 {
            if let TraceEvent::MemAccess(access) = w.next_event() {
                total += 1;
                if access.kind == AccessKind::Store {
                    stores += 1;
                }
            }
        }
        let fraction = f64::from(stores) / f64::from(total);
        assert!(
            (fraction - 0.25).abs() < 0.02,
            "store fraction {fraction} far from 0.25"
        );
    }
}
