//! Program-phase modelling.
//!
//! Real programs are not stationary: `gcc` alternates between pointer-heavy
//! IR manipulation and register-allocation number crunching; `mcf` has long
//! memory-bound stretches punctuated by short arithmetic bursts. Phase
//! structure matters to a gating policy because it changes the *stall
//! interval distribution* over time — a predictor tuned during a compute
//! phase mispredicts at the start of a memory phase.
//!
//! The model is a three-state Markov chain over [`Phase`]s with
//! per-transition dwell lengths; each phase applies a multiplier to the
//! profile's memory-reference rate.

use rand::Rng;

use core::fmt;

/// A program phase class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Reference-rate multiplier ≈ 2×: the working set is being streamed or
    /// chased.
    MemoryIntensive,
    /// Reference-rate multiplier 1×.
    Balanced,
    /// Reference-rate multiplier ≈ 0.15×: cache-resident computation.
    ComputeIntensive,
}

impl Phase {
    /// All phases, in index order.
    pub const ALL: [Phase; 3] = [
        Phase::MemoryIntensive,
        Phase::Balanced,
        Phase::ComputeIntensive,
    ];

    /// Multiplier applied to the profile's base memory-reference rate while
    /// this phase is active.
    #[inline]
    pub fn intensity_multiplier(self) -> f64 {
        match self {
            Phase::MemoryIntensive => 2.0,
            Phase::Balanced => 1.0,
            Phase::ComputeIntensive => 0.15,
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::MemoryIntensive => 0,
            Phase::Balanced => 1,
            Phase::ComputeIntensive => 2,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::MemoryIntensive => "mem",
            Phase::Balanced => "bal",
            Phase::ComputeIntensive => "cpu",
        };
        f.write_str(s)
    }
}

/// A static description of a workload's phase behaviour: initial phase,
/// Markov transition matrix, and mean dwell length in instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    start: Phase,
    /// `transition[from][to]`, rows sum to 1.
    transition: [[f64; 3]; 3],
    /// Mean instructions spent in a phase before re-rolling.
    mean_dwell_instructions: u64,
}

impl PhaseSchedule {
    /// A schedule that stays almost entirely in the memory-intensive phase
    /// (mcf/lbm-like programs).
    pub fn mostly_memory() -> Self {
        PhaseSchedule {
            start: Phase::MemoryIntensive,
            transition: [[0.85, 0.12, 0.03], [0.60, 0.30, 0.10], [0.50, 0.30, 0.20]],
            mean_dwell_instructions: 200_000,
        }
    }

    /// A schedule that stays almost entirely in the compute-intensive phase
    /// (namd/h264ref-like programs).
    pub fn mostly_compute() -> Self {
        PhaseSchedule {
            start: Phase::ComputeIntensive,
            transition: [[0.20, 0.30, 0.50], [0.10, 0.30, 0.60], [0.03, 0.12, 0.85]],
            mean_dwell_instructions: 200_000,
        }
    }

    /// A schedule that alternates between all three phases (gcc/astar-like
    /// programs).
    pub fn alternating() -> Self {
        PhaseSchedule {
            start: Phase::Balanced,
            transition: [[0.40, 0.40, 0.20], [0.30, 0.40, 0.30], [0.20, 0.40, 0.40]],
            mean_dwell_instructions: 100_000,
        }
    }

    /// A degenerate single-phase schedule; the workload is stationary.
    /// Useful for controlled sensitivity experiments where phase noise
    /// would obscure the parameter under study.
    pub fn stationary(phase: Phase) -> Self {
        let mut transition = [[0.0; 3]; 3];
        for row in &mut transition {
            row[phase.index()] = 1.0;
        }
        PhaseSchedule {
            start: phase,
            transition,
            mean_dwell_instructions: u64::MAX / 4,
        }
    }

    /// The initial phase.
    pub fn start(&self) -> Phase {
        self.start
    }

    /// Mean phase dwell length in instructions.
    pub fn mean_dwell_instructions(&self) -> u64 {
        self.mean_dwell_instructions
    }

    /// Transition probability from `from` to `to`.
    pub fn probability(&self, from: Phase, to: Phase) -> f64 {
        self.transition[from.index()][to.index()]
    }
}

/// The runtime state of a phase schedule: tracks the current phase and
/// re-rolls transitions as instructions retire.
#[derive(Debug, Clone)]
pub struct PhaseModel {
    schedule: PhaseSchedule,
    current: Phase,
    remaining_instructions: u64,
}

impl PhaseModel {
    /// Starts the model in the schedule's initial phase with a full dwell.
    pub fn new(schedule: PhaseSchedule) -> Self {
        let current = schedule.start();
        let remaining = schedule.mean_dwell_instructions();
        PhaseModel {
            schedule,
            current,
            remaining_instructions: remaining,
        }
    }

    /// The currently active phase.
    pub fn current(&self) -> Phase {
        self.current
    }

    /// Retires `instructions` instructions, possibly transitioning phase.
    /// Returns the phase active *after* the retirement.
    pub fn retire<R: Rng>(&mut self, instructions: u64, rng: &mut R) -> Phase {
        if instructions >= self.remaining_instructions {
            self.transition(rng);
        } else {
            self.remaining_instructions -= instructions;
        }
        self.current
    }

    fn transition<R: Rng>(&mut self, rng: &mut R) {
        let row = self.schedule.transition[self.current.index()];
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0;
        let mut next = self.current;
        for (phase, p) in Phase::ALL.into_iter().zip(row) {
            cumulative += p;
            if draw < cumulative {
                next = phase;
                break;
            }
        }
        self.current = next;
        // Dwell lengths are exponential-ish: uniform in [0.5, 1.5] × mean,
        // enough temporal variety without heavy tails that would make short
        // runs unrepresentative.
        let mean = self.schedule.mean_dwell_instructions() as f64;
        let jitter = 0.5 + rng.gen::<f64>();
        self.remaining_instructions = (mean * jitter).max(1.0) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_sum_to_one() {
        for schedule in [
            PhaseSchedule::mostly_memory(),
            PhaseSchedule::mostly_compute(),
            PhaseSchedule::alternating(),
            PhaseSchedule::stationary(Phase::Balanced),
        ] {
            for from in Phase::ALL {
                let sum: f64 = Phase::ALL
                    .into_iter()
                    .map(|to| schedule.probability(from, to))
                    .sum();
                assert!((sum - 1.0).abs() < 1e-9, "row {from} sums to {sum}");
            }
        }
    }

    #[test]
    fn stationary_never_leaves() {
        let mut model = PhaseModel::new(PhaseSchedule::stationary(Phase::MemoryIntensive));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(model.retire(1_000_000, &mut rng), Phase::MemoryIntensive);
        }
    }

    #[test]
    fn mostly_memory_dwells_in_memory_phase() {
        let mut model = PhaseModel::new(PhaseSchedule::mostly_memory());
        let mut rng = StdRng::seed_from_u64(42);
        let mut in_memory = 0u32;
        let steps = 10_000;
        for _ in 0..steps {
            if model.retire(50_000, &mut rng) == Phase::MemoryIntensive {
                in_memory += 1;
            }
        }
        assert!(
            in_memory > steps / 2,
            "expected majority memory phase, got {in_memory}/{steps}"
        );
    }

    #[test]
    fn retire_only_transitions_after_dwell() {
        let schedule = PhaseSchedule::alternating();
        let mut model = PhaseModel::new(schedule.clone());
        let mut rng = StdRng::seed_from_u64(3);
        // One instruction never exhausts the initial dwell.
        let phase = model.retire(1, &mut rng);
        assert_eq!(phase, schedule.start());
    }

    #[test]
    fn multipliers_ordered() {
        assert!(
            Phase::MemoryIntensive.intensity_multiplier() > Phase::Balanced.intensity_multiplier()
        );
        assert!(
            Phase::Balanced.intensity_multiplier() > Phase::ComputeIntensive.intensity_multiplier()
        );
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::MemoryIntensive.to_string(), "mem");
        assert_eq!(Phase::Balanced.to_string(), "bal");
        assert_eq!(Phase::ComputeIntensive.to_string(), "cpu");
    }
}
