//! Address-stream generation.
//!
//! The stream is a mixture of region-local sequential runs and random jumps,
//! across a small set of "hot regions". The three knobs map directly to
//! hierarchy behaviour:
//!
//! - **spatial locality** (probability of continuing the current run)
//!   controls cache hit rates and DRAM row-buffer hit rates;
//! - **hot region count** controls DRAM bank-level parallelism;
//! - **working-set size** controls whether the stream fits in the caches at
//!   all.

use rand::Rng;

use core::fmt;

/// Cache-line size assumed throughout the workspace (bytes).
pub const LINE_BYTES: u64 = 64;

/// Byte stride of a sequential run (one word). Eight sequential references
/// share a cache line, so spatial locality translates into L1 hits — the
/// mechanism that separates streaming workloads (lbm-like, high locality,
/// decent hit rates) from pointer chasers (mcf-like, jumps on every
/// reference).
pub const SEQ_STRIDE_BYTES: u64 = 8;

/// A classification of how an address was produced, reported for trace
/// statistics and tested against the configured mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressPattern {
    /// Continued the current sequential run (next line in the region).
    Sequential,
    /// Jumped to a random line within the current hot region.
    RegionJump,
    /// Switched to a different hot region.
    RegionSwitch,
}

impl fmt::Display for AddressPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressPattern::Sequential => "seq",
            AddressPattern::RegionJump => "jump",
            AddressPattern::RegionSwitch => "switch",
        };
        f.write_str(s)
    }
}

/// Deterministic generator of a byte-address stream with controlled
/// locality.
///
/// ```
/// use mapg_trace::AddressStream;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut stream = AddressStream::new(8 << 20, 0.8, 4);
/// let (addr, _pattern) = stream.next_addr(&mut rng);
/// assert!(addr < 8 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct AddressStream {
    working_set_bytes: u64,
    spatial_locality: f64,
    region_bytes: u64,
    /// Current line cursor per region (byte address).
    cursors: Vec<u64>,
    current_region: usize,
    /// Probability of switching regions when a run breaks.
    region_switch_bias: f64,
}

impl AddressStream {
    /// Creates a stream over `working_set_bytes` bytes split into `regions`
    /// equal hot regions with the given sequential-continuation probability.
    ///
    /// A working set too small to give every region a full cache line
    /// degenerates gracefully: the region count is clamped so each region
    /// holds at least one line (a 64 B working set is always one region,
    /// whatever was asked for). Differential fuzzing found the old
    /// panic-on-starved-regions contract reachable through profiles the
    /// `ProfileBuilder` accepts, which turned `Simulation::run` into a
    /// crash on tiny working sets.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one line, if `regions` is
    /// zero, or if `spatial_locality` is outside `[0, 1)`.
    pub fn new(working_set_bytes: u64, spatial_locality: f64, regions: u32) -> Self {
        assert!(regions > 0, "need at least one region");
        assert!(
            (0.0..1.0).contains(&spatial_locality),
            "locality must be in [0,1), got {spatial_locality}"
        );
        assert!(
            working_set_bytes >= LINE_BYTES,
            "working set must hold at least one line, got {working_set_bytes} B"
        );
        let line_budget = working_set_bytes / LINE_BYTES;
        let regions = u64::from(regions).min(line_budget).max(1) as u32;
        let region_bytes = working_set_bytes / u64::from(regions);
        let cursors = (0..u64::from(regions)).map(|r| r * region_bytes).collect();
        AddressStream {
            working_set_bytes,
            spatial_locality,
            region_bytes,
            cursors,
            current_region: 0,
            region_switch_bias: 0.3,
        }
    }

    /// The configured working-set size in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// Number of hot regions.
    pub fn regions(&self) -> usize {
        self.cursors.len()
    }

    /// Produces the next address and the pattern class that produced it.
    pub fn next_addr<R: Rng>(&mut self, rng: &mut R) -> (u64, AddressPattern) {
        if rng.gen::<f64>() < self.spatial_locality {
            (self.advance_run(), AddressPattern::Sequential)
        } else if self.cursors.len() > 1 && rng.gen::<f64>() < self.region_switch_bias {
            self.current_region = rng.gen_range(0..self.cursors.len());
            (self.jump_within_region(rng), AddressPattern::RegionSwitch)
        } else {
            (self.jump_within_region(rng), AddressPattern::RegionJump)
        }
    }

    /// Advances the current region's sequential cursor by one word,
    /// wrapping at the region boundary.
    fn advance_run(&mut self) -> u64 {
        let base = self.region_base(self.current_region);
        let cursor = &mut self.cursors[self.current_region];
        let offset = (*cursor - base + SEQ_STRIDE_BYTES) % self.region_bytes;
        *cursor = base + offset;
        *cursor
    }

    /// Jumps the current region's cursor to a random line inside it.
    fn jump_within_region<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let base = self.region_base(self.current_region);
        let lines = self.region_bytes / LINE_BYTES;
        let line = rng.gen_range(0..lines);
        let addr = base + line * LINE_BYTES;
        self.cursors[self.current_region] = addr;
        addr
    }

    fn region_base(&self, region: usize) -> u64 {
        region as u64 * self.region_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream() -> AddressStream {
        AddressStream::new(1 << 20, 0.7, 4)
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let mut s = stream();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let (addr, _) = s.next_addr(&mut rng);
            assert!(addr < 1 << 20, "address {addr:#x} escaped working set");
            assert_eq!(addr % SEQ_STRIDE_BYTES, 0, "addresses are word-aligned");
        }
    }

    /// Fuzz regression: a working set smaller than one line per requested
    /// region used to panic from deep inside `Simulation::run`; it must
    /// degrade to fewer regions instead.
    #[test]
    fn starved_regions_clamp_instead_of_panicking() {
        let mut s = AddressStream::new(64, 0.99, 8);
        assert_eq!(s.regions(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let (addr, _) = s.next_addr(&mut rng);
            assert!(addr < 64, "address {addr:#x} escaped working set");
        }
        // Enough lines for every requested region: no clamping.
        let s = AddressStream::new(4 << 10, 0.5, 8);
        assert_eq!(s.regions(), 8);
    }

    #[test]
    fn locality_mixture_approximates_parameter() {
        let mut s = AddressStream::new(1 << 20, 0.8, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sequential = (0..n)
            .filter(|_| matches!(s.next_addr(&mut rng).1, AddressPattern::Sequential))
            .count();
        let fraction = sequential as f64 / n as f64;
        assert!(
            (fraction - 0.8).abs() < 0.02,
            "sequential fraction {fraction} far from 0.8"
        );
    }

    #[test]
    fn sequential_runs_advance_by_word() {
        let mut s = AddressStream::new(1 << 16, 0.999, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (first, _) = s.next_addr(&mut rng);
        let (second, pattern) = s.next_addr(&mut rng);
        if pattern == AddressPattern::Sequential {
            let expected = (first + SEQ_STRIDE_BYTES) % (1 << 16);
            assert_eq!(second, expected);
        }
        // Eight consecutive sequential references fit in one line.
        const _: () = assert!(SEQ_STRIDE_BYTES * 8 == LINE_BYTES);
    }

    #[test]
    fn zero_locality_never_sequential() {
        let mut s = AddressStream::new(1 << 18, 0.0, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let (_, pattern) = s.next_addr(&mut rng);
            assert_ne!(pattern, AddressPattern::Sequential);
        }
    }

    #[test]
    fn single_region_never_switches() {
        let mut s = AddressStream::new(1 << 18, 0.2, 1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let (_, pattern) = s.next_addr(&mut rng);
            assert_ne!(pattern, AddressPattern::RegionSwitch);
        }
    }

    #[test]
    #[should_panic(expected = "working set must hold at least one line")]
    fn rejects_tiny_working_set() {
        let _ = AddressStream::new(32, 0.5, 1);
    }

    /// 128 B across 4 requested regions used to be rejected; it now clamps
    /// to the 2 regions the line budget allows.
    #[test]
    fn sub_line_regions_clamp() {
        assert_eq!(AddressStream::new(128, 0.5, 4).regions(), 2);
    }

    #[test]
    fn accessors() {
        let s = stream();
        assert_eq!(s.working_set_bytes(), 1 << 20);
        assert_eq!(s.regions(), 4);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = stream();
        let mut b = stream();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for _ in 0..1000 {
            assert_eq!(a.next_addr(&mut rng_a), b.next_addr(&mut rng_b));
        }
    }
}
