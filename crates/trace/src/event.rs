//! The event vocabulary exchanged between workload generators and the core
//! model.

use core::fmt;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the core may stall waiting for its data.
    Load,
    /// A store; posted to the hierarchy, never stalls the core directly
    /// (write buffers are assumed adequate, as in the original evaluation's
    /// out-of-order cores).
    Store,
}

impl AccessKind {
    /// Whether the access is a load.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("LD"),
            AccessKind::Store => f.write_str("ST"),
        }
    }
}

/// One memory reference emitted by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Byte address of the reference.
    pub addr: u64,
    /// Program counter of the referencing instruction; keys history-based
    /// miss-latency predictors.
    pub pc: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// `true` when the access depends on the previous in-flight miss
    /// (pointer chasing). Dependent accesses cannot issue until the previous
    /// miss returns, which serializes latency and destroys memory-level
    /// parallelism — exactly the behaviour that makes workloads like `mcf`
    /// stall-dominated.
    pub dependent: bool,
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:#012x} pc={:#x}{}",
            self.kind,
            self.addr,
            self.pc,
            if self.dependent { " dep" } else { "" }
        )
    }
}

/// One event in a workload's instruction stream.
///
/// A workload is a sequence of compute quanta interleaved with memory
/// references. The compute quanta carry both the cycle cost (at the core's
/// issue rate) and the instruction count so the consumer can report IPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// Execute `instructions` instructions taking `cycles` core cycles
    /// (cache-resident work; never stalls on memory).
    Compute {
        /// Core cycles the quantum occupies.
        cycles: u64,
        /// Instructions retired by the quantum.
        instructions: u64,
    },
    /// Issue one memory reference (always also retires one instruction).
    MemAccess(MemAccess),
    /// The program has nothing to run for `cycles` cycles (blocked on I/O,
    /// descheduled, waiting for work). Retires no instructions. This is
    /// the interval classic OS-idle power gating targets.
    Idle {
        /// Idle duration in core cycles.
        cycles: u64,
    },
}

impl TraceEvent {
    /// Instructions retired by this event.
    #[inline]
    pub fn instructions(&self) -> u64 {
        match self {
            TraceEvent::Compute { instructions, .. } => *instructions,
            TraceEvent::MemAccess(_) => 1,
            TraceEvent::Idle { .. } => 0,
        }
    }

    /// Returns the contained access if this is a memory event.
    #[inline]
    pub fn as_mem_access(&self) -> Option<&MemAccess> {
        match self {
            TraceEvent::MemAccess(access) => Some(access),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Compute {
                cycles,
                instructions,
            } => write!(f, "COMP {cycles} cyc / {instructions} inst"),
            TraceEvent::MemAccess(access) => write!(f, "{access}"),
            TraceEvent::Idle { cycles } => write!(f, "IDLE {cycles} cyc"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_accounting() {
        let compute = TraceEvent::Compute {
            cycles: 10,
            instructions: 20,
        };
        assert_eq!(compute.instructions(), 20);
        assert!(compute.as_mem_access().is_none());

        let access = TraceEvent::MemAccess(MemAccess {
            addr: 0x1000,
            pc: 0x400,
            kind: AccessKind::Load,
            dependent: false,
        });
        assert_eq!(access.instructions(), 1);
        assert!(access.as_mem_access().is_some());
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Load.is_load());
        assert!(!AccessKind::Store.is_load());
    }

    #[test]
    fn display_formats() {
        let access = MemAccess {
            addr: 0x2000,
            pc: 0x80,
            kind: AccessKind::Store,
            dependent: true,
        };
        let text = access.to_string();
        assert!(text.contains("ST"), "{text}");
        assert!(text.contains("dep"), "{text}");

        let quantum = TraceEvent::Compute {
            cycles: 5,
            instructions: 9,
        };
        assert_eq!(quantum.to_string(), "COMP 5 cyc / 9 inst");
    }
}
