//! Offline statistics over a trace prefix, used for workload
//! characterization tables (experiment R-T2) and for validating that the
//! generator produces what its profile promises.

use std::collections::HashSet;

use crate::address::LINE_BYTES;
use crate::event::{AccessKind, TraceEvent};
use crate::generator::EventSource;

/// Summary statistics of a trace prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Instructions retired in the measured prefix.
    pub instructions: u64,
    /// Core cycles the compute quanta occupy (no memory time).
    pub compute_cycles: u64,
    /// Total memory references.
    pub mem_refs: u64,
    /// Load references.
    pub loads: u64,
    /// Store references.
    pub stores: u64,
    /// References flagged as dependent on the previous miss.
    pub dependent_refs: u64,
    /// Distinct cache lines touched.
    pub unique_lines: u64,
    /// Injected idle periods encountered.
    pub idle_periods: u64,
    /// Total injected idle cycles.
    pub idle_cycles: u64,
}

impl TraceStats {
    /// Consumes events from `source` until at least `instructions`
    /// instructions have retired and summarizes them.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn collect<S: EventSource>(source: &mut S, instructions: u64) -> Self {
        assert!(instructions > 0, "must measure at least one instruction");
        let mut stats = TraceStats {
            instructions: 0,
            compute_cycles: 0,
            mem_refs: 0,
            loads: 0,
            stores: 0,
            dependent_refs: 0,
            unique_lines: 0,
            idle_periods: 0,
            idle_cycles: 0,
        };
        let mut lines = HashSet::new();
        while stats.instructions < instructions {
            match source.next_event() {
                TraceEvent::Compute {
                    cycles,
                    instructions: insts,
                } => {
                    stats.compute_cycles += cycles;
                    stats.instructions += insts;
                }
                TraceEvent::MemAccess(access) => {
                    stats.instructions += 1;
                    stats.mem_refs += 1;
                    match access.kind {
                        AccessKind::Load => stats.loads += 1,
                        AccessKind::Store => stats.stores += 1,
                    }
                    if access.dependent {
                        stats.dependent_refs += 1;
                    }
                    lines.insert(access.addr / LINE_BYTES);
                }
                TraceEvent::Idle { cycles } => {
                    stats.idle_periods += 1;
                    stats.idle_cycles += cycles;
                }
            }
        }
        stats.unique_lines = lines.len() as u64;
        stats
    }

    /// Memory references per kilo-instruction.
    pub fn refs_per_kilo_inst(&self) -> f64 {
        self.mem_refs as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of references that are dependent (pointer-chasing).
    pub fn dependent_fraction(&self) -> f64 {
        if self.mem_refs == 0 {
            0.0
        } else {
            self.dependent_refs as f64 / self.mem_refs as f64
        }
    }

    /// Footprint touched by the prefix, in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_lines * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticWorkload;
    use crate::profile::WorkloadProfile;

    #[test]
    fn conservation_of_references() {
        let mut w = SyntheticWorkload::new(&WorkloadProfile::mixed("cons"), 17);
        let stats = TraceStats::collect(&mut w, 500_000);
        assert_eq!(stats.mem_refs, stats.loads + stats.stores);
        assert!(stats.instructions >= 500_000);
        assert!(stats.dependent_refs <= stats.mem_refs);
        assert!(stats.unique_lines <= stats.mem_refs);
    }

    #[test]
    fn footprint_bounded_by_working_set() {
        let profile = WorkloadProfile::builder("fp")
            .working_set_bytes(1 << 20)
            .mem_refs_per_kilo_inst(400.0)
            .build();
        let mut w = SyntheticWorkload::new(&profile, 4);
        let stats = TraceStats::collect(&mut w, 1_000_000);
        assert!(stats.footprint_bytes() <= 1 << 20);
        // A dense reference stream should touch a decent chunk of it.
        assert!(stats.footprint_bytes() > 1 << 16);
    }

    #[test]
    fn dependent_fraction_tracks_profile() {
        let profile = WorkloadProfile::builder("dep")
            .pointer_chase_fraction(0.5)
            .mem_refs_per_kilo_inst(300.0)
            .build();
        let mut w = SyntheticWorkload::new(&profile, 21);
        let stats = TraceStats::collect(&mut w, 1_000_000);
        assert!(
            (stats.dependent_fraction() - 0.5).abs() < 0.03,
            "dependent fraction {}",
            stats.dependent_fraction()
        );
    }

    #[test]
    fn zero_refs_dependent_fraction_is_zero() {
        let stats = TraceStats {
            instructions: 10,
            compute_cycles: 5,
            mem_refs: 0,
            loads: 0,
            stores: 0,
            dependent_refs: 0,
            unique_lines: 0,
            idle_periods: 0,
            idle_cycles: 0,
        };
        assert_eq!(stats.dependent_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn rejects_zero_length_measurement() {
        let mut w = SyntheticWorkload::new(&WorkloadProfile::mixed("z"), 1);
        let _ = TraceStats::collect(&mut w, 0);
    }
}
