//! Workload profiles: the parameter sets that induce a benchmark's memory
//! behaviour.

use core::fmt;

use crate::phase::PhaseSchedule;

/// Periodic long-idle injection: models interactive/I/O-bound programs
/// that block for OS-scale periods between bursts of work — the intervals
/// classic idle-driven power gating targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleInjection {
    /// Mean instructions executed between idle periods.
    pub mean_interval_instructions: u64,
    /// Length of each idle period in core cycles.
    pub duration_cycles: u64,
}

impl IdleInjection {
    /// Creates an injection spec.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(mean_interval_instructions: u64, duration_cycles: u64) -> Self {
        assert!(
            mean_interval_instructions > 0,
            "idle interval must be non-zero"
        );
        assert!(duration_cycles > 0, "idle duration must be non-zero");
        IdleInjection {
            mean_interval_instructions,
            duration_cycles,
        }
    }
}

/// The tuning knobs that determine a synthetic workload's memory behaviour.
///
/// Each field maps to an architecturally observable property of the SPEC
/// benchmark class the profile imitates:
///
/// | field | induces |
/// |---|---|
/// | `mem_refs_per_kilo_inst` | L1 access rate, and with `working_set_bytes`, the LLC MPKI |
/// | `working_set_bytes` | whether references fit in cache (compute-bound) or not (memory-bound) |
/// | `spatial_locality` | sequential-run length → L1/L2 hit rate and DRAM row-buffer hit rate |
/// | `hot_regions` | number of concurrently active address regions → DRAM bank-level parallelism |
/// | `pointer_chase_fraction` | dependent misses → destroys MLP, serializes stalls (mcf-style) |
/// | `write_fraction` | store traffic (posted, does not stall the core) |
/// | `compute_ipc` | issue rate of cache-resident quanta |
///
/// Construct with the presets ([`WorkloadProfile::mem_bound`],
/// [`WorkloadProfile::compute_bound`], [`WorkloadProfile::mixed`]) or the
/// [`ProfileBuilder`] for full control:
///
/// ```
/// use mapg_trace::WorkloadProfile;
///
/// let custom = WorkloadProfile::builder("streaming")
///     .mem_refs_per_kilo_inst(120.0)
///     .working_set_bytes(64 << 20)
///     .spatial_locality(0.95)
///     .build();
/// assert_eq!(custom.name(), "streaming");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    name: String,
    mem_refs_per_kilo_inst: f64,
    working_set_bytes: u64,
    spatial_locality: f64,
    hot_regions: u32,
    pointer_chase_fraction: f64,
    write_fraction: f64,
    compute_ipc: f64,
    phases: PhaseSchedule,
    idle_injection: Option<IdleInjection>,
}

impl WorkloadProfile {
    /// Starts building a profile with neutral (mixed-workload) defaults.
    pub fn builder(name: impl Into<String>) -> ProfileBuilder {
        ProfileBuilder::new(name)
    }

    /// A memory-bound profile in the style of `mcf`/`lbm`: large working
    /// set, high reference rate, significant pointer chasing.
    pub fn mem_bound(name: impl Into<String>) -> Self {
        ProfileBuilder::new(name)
            .mem_refs_per_kilo_inst(90.0)
            .working_set_bytes(256 << 20)
            .spatial_locality(0.45)
            .hot_regions(8)
            .pointer_chase_fraction(0.45)
            .compute_ipc(1.2)
            .phases(PhaseSchedule::mostly_memory())
            .build()
    }

    /// A compute-bound profile in the style of `namd`/`h264ref`: cache
    /// resident working set, sparse memory traffic.
    pub fn compute_bound(name: impl Into<String>) -> Self {
        ProfileBuilder::new(name)
            .mem_refs_per_kilo_inst(50.0)
            .working_set_bytes(192 << 10)
            .spatial_locality(0.9)
            .hot_regions(2)
            .pointer_chase_fraction(0.02)
            .compute_ipc(2.4)
            .phases(PhaseSchedule::mostly_compute())
            .build()
    }

    /// A phase-alternating profile in the style of `gcc`/`astar`.
    pub fn mixed(name: impl Into<String>) -> Self {
        ProfileBuilder::new(name)
            .mem_refs_per_kilo_inst(70.0)
            .working_set_bytes(16 << 20)
            .spatial_locality(0.7)
            .hot_regions(4)
            .pointer_chase_fraction(0.2)
            .compute_ipc(1.8)
            .phases(PhaseSchedule::alternating())
            .build()
    }

    /// The profile's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory references per 1000 instructions (before phase modulation).
    pub fn mem_refs_per_kilo_inst(&self) -> f64 {
        self.mem_refs_per_kilo_inst
    }

    /// Working-set size in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// Probability that a reference continues the current sequential run.
    pub fn spatial_locality(&self) -> f64 {
        self.spatial_locality
    }

    /// Number of concurrently hot address regions.
    pub fn hot_regions(&self) -> u32 {
        self.hot_regions
    }

    /// Fraction of references that depend on the previous outstanding miss.
    pub fn pointer_chase_fraction(&self) -> f64 {
        self.pointer_chase_fraction
    }

    /// Fraction of references that are stores.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Issue rate (instructions per cycle) of cache-resident compute quanta.
    pub fn compute_ipc(&self) -> f64 {
        self.compute_ipc
    }

    /// The phase schedule describing the workload's temporal structure.
    pub fn phases(&self) -> &PhaseSchedule {
        &self.phases
    }

    /// The long-idle injection spec, when configured.
    pub fn idle_injection(&self) -> Option<IdleInjection> {
        self.idle_injection
    }

    /// Returns a copy with a different name (useful when sweeping one
    /// parameter across variants of a base profile).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        let mut copy = self.clone();
        copy.name = name.into();
        copy
    }

    /// Returns a copy with the reference rate scaled by `factor`, used by
    /// sensitivity sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_mem_intensity_scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "intensity factor must be positive, got {factor}"
        );
        let mut copy = self.clone();
        copy.mem_refs_per_kilo_inst = (copy.mem_refs_per_kilo_inst * factor).min(1000.0);
        copy
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (refs/ki={:.0}, ws={} MiB, chase={:.0}%)",
            self.name,
            self.mem_refs_per_kilo_inst,
            self.working_set_bytes >> 20,
            self.pointer_chase_fraction * 100.0
        )
    }
}

/// Builder for [`WorkloadProfile`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#builders-enable-construction-of-complex-values-c-builder
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    profile: WorkloadProfile,
}

impl ProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        ProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                mem_refs_per_kilo_inst: 70.0,
                working_set_bytes: 16 << 20,
                spatial_locality: 0.7,
                hot_regions: 4,
                pointer_chase_fraction: 0.1,
                write_fraction: 0.3,
                compute_ipc: 2.0,
                phases: PhaseSchedule::alternating(),
                idle_injection: None,
            },
        }
    }

    /// Sets memory references per kilo-instruction (clamped to `(0, 1000]`).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not in `(0, 1000]` (a reference rate above one
    /// per instruction is not representable in the event stream).
    pub fn mem_refs_per_kilo_inst(mut self, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1000.0,
            "mem_refs_per_kilo_inst must be in (0, 1000], got {rate}"
        );
        self.profile.mem_refs_per_kilo_inst = rate;
        self
    }

    /// Sets the working-set size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if smaller than one cache line (64 B).
    pub fn working_set_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes >= 64, "working set must hold at least one line");
        self.profile.working_set_bytes = bytes;
        self
    }

    /// Sets the sequential-continuation probability.
    ///
    /// # Panics
    ///
    /// Panics if not in `[0, 1)` (a locality of exactly 1.0 would never
    /// start a new run and degenerate to a single stream).
    pub fn spatial_locality(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "locality must be in [0,1), got {p}"
        );
        self.profile.spatial_locality = p;
        self
    }

    /// Sets the number of hot regions.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn hot_regions(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one hot region is required");
        self.profile.hot_regions = n;
        self
    }

    /// Sets the dependent-access fraction.
    ///
    /// # Panics
    ///
    /// Panics if not in `[0, 1]`.
    pub fn pointer_chase_fraction(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fraction must be in [0,1], got {p}"
        );
        self.profile.pointer_chase_fraction = p;
        self
    }

    /// Sets the store fraction.
    ///
    /// # Panics
    ///
    /// Panics if not in `[0, 1]`.
    pub fn write_fraction(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fraction must be in [0,1], got {p}"
        );
        self.profile.write_fraction = p;
        self
    }

    /// Sets the compute-quantum issue rate in instructions per cycle.
    ///
    /// # Panics
    ///
    /// Panics if not in `(0, 8]`.
    pub fn compute_ipc(mut self, ipc: f64) -> Self {
        assert!(ipc > 0.0 && ipc <= 8.0, "IPC must be in (0, 8], got {ipc}");
        self.profile.compute_ipc = ipc;
        self
    }

    /// Sets the phase schedule.
    pub fn phases(mut self, schedule: PhaseSchedule) -> Self {
        self.profile.phases = schedule;
        self
    }

    /// Enables periodic long-idle injection (interactive/I/O behaviour).
    pub fn idle_injection(mut self, injection: IdleInjection) -> Self {
        self.profile.idle_injection = Some(injection);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> WorkloadProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let mem = WorkloadProfile::mem_bound("m");
        let cpu = WorkloadProfile::compute_bound("c");
        assert!(mem.mem_refs_per_kilo_inst() > cpu.mem_refs_per_kilo_inst());
        assert!(mem.working_set_bytes() > cpu.working_set_bytes());
        assert!(mem.pointer_chase_fraction() > cpu.pointer_chase_fraction());
        assert!(cpu.compute_ipc() > mem.compute_ipc());
    }

    #[test]
    fn builder_overrides_defaults() {
        let p = WorkloadProfile::builder("x")
            .mem_refs_per_kilo_inst(10.0)
            .working_set_bytes(1 << 20)
            .spatial_locality(0.5)
            .hot_regions(3)
            .pointer_chase_fraction(0.4)
            .write_fraction(0.1)
            .compute_ipc(1.0)
            .build();
        assert_eq!(p.mem_refs_per_kilo_inst(), 10.0);
        assert_eq!(p.working_set_bytes(), 1 << 20);
        assert_eq!(p.hot_regions(), 3);
        assert_eq!(p.write_fraction(), 0.1);
    }

    #[test]
    #[should_panic(expected = "mem_refs_per_kilo_inst")]
    fn rejects_impossible_reference_rate() {
        let _ = WorkloadProfile::builder("x").mem_refs_per_kilo_inst(1500.0);
    }

    #[test]
    #[should_panic(expected = "locality")]
    fn rejects_degenerate_locality() {
        let _ = WorkloadProfile::builder("x").spatial_locality(1.0);
    }

    #[test]
    fn renamed_keeps_parameters() {
        let base = WorkloadProfile::mem_bound("a");
        let copy = base.renamed("b");
        assert_eq!(copy.name(), "b");
        assert_eq!(copy.mem_refs_per_kilo_inst(), base.mem_refs_per_kilo_inst());
    }

    #[test]
    fn intensity_scaling_clamps() {
        let base = WorkloadProfile::mem_bound("a");
        let hot = base.with_mem_intensity_scaled(10.0);
        assert!(hot.mem_refs_per_kilo_inst() <= 1000.0);
        let cool = base.with_mem_intensity_scaled(0.5);
        assert!((cool.mem_refs_per_kilo_inst() - base.mem_refs_per_kilo_inst() * 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_name() {
        let p = WorkloadProfile::mixed("gcc_like");
        assert!(p.to_string().contains("gcc_like"));
    }
}
