//! Synthetic workload generation for the MAPG reproduction.
//!
//! # Why synthetic workloads
//!
//! The original MAPG evaluation drives a gem5-class simulator with SPEC
//! CPU2006 binaries. Neither is available here, but the power-gating policy
//! under study only ever observes the *memory stall behaviour* of a program:
//! how often the core misses in the last-level cache, how long each miss
//! takes, and how much of that latency can be overlapped (memory-level
//! parallelism). Those properties are induced by a small set of workload
//! parameters — references per kilo-instruction, working-set size, spatial
//! locality, pointer-chase (dependence) fraction, phase structure — which
//! this crate models directly. A [`WorkloadProfile`] pins those parameters
//! to the published characteristics of a SPEC benchmark class; a
//! [`SyntheticWorkload`] turns the profile into a deterministic, seeded
//! event stream the core model consumes.
//!
//! # Example
//!
//! ```
//! use mapg_trace::{SyntheticWorkload, TraceEvent, WorkloadProfile};
//!
//! let profile = WorkloadProfile::mem_bound("mcf_like");
//! let mut workload = SyntheticWorkload::new(&profile, /*seed=*/ 7);
//! let first = workload.next().expect("workload streams are unbounded");
//! match first {
//!     TraceEvent::Compute { .. } | TraceEvent::MemAccess { .. } => {}
//!     TraceEvent::Idle { .. } => unreachable!("no idle injection configured"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod event;
mod generator;
mod phase;
mod profile;
mod recorded;
mod stats;
pub mod suite;

pub use address::{AddressPattern, AddressStream, LINE_BYTES, SEQ_STRIDE_BYTES};
pub use event::{AccessKind, MemAccess, TraceEvent};
pub use generator::{EventSource, SyntheticWorkload};
pub use phase::{Phase, PhaseModel, PhaseSchedule};
pub use profile::{IdleInjection, ProfileBuilder, WorkloadProfile};
pub use recorded::{ParseTraceError, RecordedTrace, Replay};
pub use stats::TraceStats;
pub use suite::WorkloadSuite;
