//! The reproduction's workload suite.
//!
//! Twelve profiles spanning the memory-intensity spectrum of SPEC CPU2006,
//! the suite MAPG's evaluation draws from. Each profile's parameters were
//! chosen so that, when run through the workspace's default hierarchy
//! (32 KiB L1 / 2 MiB L2 / DDR3-class DRAM), the induced LLC MPKI and
//! memory-stall fraction land in the published range for its namesake
//! class. The `_like` suffix is a reminder that these are *behavioural
//! stand-ins*, not the benchmarks themselves (see DESIGN.md §2).

use crate::phase::{Phase, PhaseSchedule};
use crate::profile::WorkloadProfile;

/// The full reproduction suite.
///
/// ```
/// use mapg_trace::WorkloadSuite;
///
/// let suite = WorkloadSuite::spec_like();
/// assert_eq!(suite.profiles().len(), 12);
/// assert!(suite.profiles().iter().any(|p| p.name() == "mcf_like"));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSuite {
    profiles: Vec<WorkloadProfile>,
}

impl WorkloadSuite {
    /// The twelve-profile SPEC-CPU2006-like suite.
    pub fn spec_like() -> Self {
        let profiles = vec![
            // --- memory-bound tier -------------------------------------
            // mcf: graph/network simplex; pointer chasing dominates, poor
            // locality, huge working set. The canonical stall machine.
            WorkloadProfile::builder("mcf_like")
                .mem_refs_per_kilo_inst(75.0)
                .working_set_bytes(512 << 20)
                .spatial_locality(0.3)
                .hot_regions(6)
                .pointer_chase_fraction(0.65)
                .write_fraction(0.25)
                .compute_ipc(1.0)
                .phases(PhaseSchedule::mostly_memory())
                .build(),
            // lbm: lattice-Boltzmann streaming; high bandwidth, very
            // regular strides, little dependence.
            WorkloadProfile::builder("lbm_like")
                .mem_refs_per_kilo_inst(200.0)
                .working_set_bytes(384 << 20)
                .spatial_locality(0.98)
                .hot_regions(12)
                .pointer_chase_fraction(0.05)
                .write_fraction(0.45)
                .compute_ipc(1.4)
                .phases(PhaseSchedule::mostly_memory())
                .build(),
            // libquantum: quantum simulation over one huge vector;
            // streaming with near-zero reuse.
            WorkloadProfile::builder("libquantum_like")
                .mem_refs_per_kilo_inst(180.0)
                .working_set_bytes(256 << 20)
                .spatial_locality(0.985)
                .hot_regions(2)
                .pointer_chase_fraction(0.02)
                .write_fraction(0.35)
                .compute_ipc(1.6)
                .phases(PhaseSchedule::stationary(Phase::MemoryIntensive))
                .build(),
            // milc: lattice QCD; strided sweeps over large arrays.
            WorkloadProfile::builder("milc_like")
                .mem_refs_per_kilo_inst(140.0)
                .working_set_bytes(192 << 20)
                .spatial_locality(0.93)
                .hot_regions(8)
                .pointer_chase_fraction(0.1)
                .write_fraction(0.3)
                .compute_ipc(1.3)
                .phases(PhaseSchedule::mostly_memory())
                .build(),
            // soplex: sparse LP solver; indirection through index vectors.
            WorkloadProfile::builder("soplex_like")
                .mem_refs_per_kilo_inst(65.0)
                .working_set_bytes(128 << 20)
                .spatial_locality(0.55)
                .hot_regions(6)
                .pointer_chase_fraction(0.35)
                .write_fraction(0.2)
                .compute_ipc(1.3)
                .phases(PhaseSchedule::mostly_memory())
                .build(),
            // omnetpp: discrete-event simulator; heap-allocated event
            // objects, pointer-rich, medium footprint.
            WorkloadProfile::builder("omnetpp_like")
                .mem_refs_per_kilo_inst(55.0)
                .working_set_bytes(96 << 20)
                .spatial_locality(0.4)
                .hot_regions(5)
                .pointer_chase_fraction(0.45)
                .write_fraction(0.3)
                .compute_ipc(1.2)
                .phases(PhaseSchedule::mostly_memory())
                .build(),
            // --- mixed tier ---------------------------------------------
            // gcc: strongly phased (parse / optimize / allocate).
            WorkloadProfile::builder("gcc_like")
                .mem_refs_per_kilo_inst(65.0)
                .working_set_bytes(48 << 20)
                .spatial_locality(0.65)
                .hot_regions(4)
                .pointer_chase_fraction(0.25)
                .write_fraction(0.3)
                .compute_ipc(1.8)
                .phases(PhaseSchedule::alternating())
                .build(),
            // astar: path-finding; pointer-ish but modest footprint.
            WorkloadProfile::builder("astar_like")
                .mem_refs_per_kilo_inst(45.0)
                .working_set_bytes(32 << 20)
                .spatial_locality(0.55)
                .hot_regions(3)
                .pointer_chase_fraction(0.3)
                .write_fraction(0.25)
                .compute_ipc(1.6)
                .phases(PhaseSchedule::alternating())
                .build(),
            // bzip2: block compression; bursty table accesses, good reuse.
            WorkloadProfile::builder("bzip2_like")
                .mem_refs_per_kilo_inst(100.0)
                .working_set_bytes(8 << 20)
                .spatial_locality(0.8)
                .hot_regions(2)
                .pointer_chase_fraction(0.1)
                .write_fraction(0.35)
                .compute_ipc(2.0)
                .phases(PhaseSchedule::alternating())
                .build(),
            // --- compute-bound tier -------------------------------------
            // perlbench: interpreter loop, hot bytecode tables.
            WorkloadProfile::builder("perlbench_like")
                .mem_refs_per_kilo_inst(90.0)
                .working_set_bytes(1 << 20)
                .spatial_locality(0.85)
                .hot_regions(2)
                .pointer_chase_fraction(0.05)
                .write_fraction(0.3)
                .compute_ipc(2.2)
                .phases(PhaseSchedule::mostly_compute())
                .build(),
            // h264ref: video encoder; macroblock-local computation.
            WorkloadProfile::builder("h264ref_like")
                .mem_refs_per_kilo_inst(70.0)
                .working_set_bytes(512 << 10)
                .spatial_locality(0.9)
                .hot_regions(2)
                .pointer_chase_fraction(0.02)
                .write_fraction(0.25)
                .compute_ipc(2.6)
                .phases(PhaseSchedule::mostly_compute())
                .build(),
            // namd: molecular dynamics; tight cache-resident kernels.
            WorkloadProfile::builder("namd_like")
                .mem_refs_per_kilo_inst(50.0)
                .working_set_bytes(256 << 10)
                .spatial_locality(0.92)
                .hot_regions(1)
                .pointer_chase_fraction(0.01)
                .write_fraction(0.2)
                .compute_ipc(2.8)
                .phases(PhaseSchedule::stationary(Phase::ComputeIntensive))
                .build(),
        ];
        WorkloadSuite { profiles }
    }

    /// A two-profile suite (one memory-bound, one compute-bound) for quick
    /// sensitivity experiments where the full suite would be noise.
    pub fn extremes() -> Self {
        WorkloadSuite {
            profiles: vec![
                WorkloadProfile::mem_bound("mem_bound"),
                WorkloadProfile::compute_bound("compute_bound"),
            ],
        }
    }

    /// The profiles in the suite.
    pub fn profiles(&self) -> &[WorkloadProfile] {
        &self.profiles
    }

    /// Looks a profile up by name.
    pub fn get(&self, name: &str) -> Option<&WorkloadProfile> {
        self.profiles.iter().find(|p| p.name() == name)
    }

    /// Iterates over the profiles.
    pub fn iter(&self) -> impl Iterator<Item = &WorkloadProfile> {
        self.profiles.iter()
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

impl FromIterator<WorkloadProfile> for WorkloadSuite {
    fn from_iter<I: IntoIterator<Item = WorkloadProfile>>(iter: I) -> Self {
        WorkloadSuite {
            profiles: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a WorkloadSuite {
    type Item = &'a WorkloadProfile;
    type IntoIter = std::slice::Iter<'a, WorkloadProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.profiles.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinctly_named_profiles() {
        let suite = WorkloadSuite::spec_like();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<_> = suite.iter().map(|p| p.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate profile names");
    }

    #[test]
    fn tiers_are_ordered_by_intensity() {
        let suite = WorkloadSuite::spec_like();
        let rate = |name: &str| suite.get(name).expect(name).mem_refs_per_kilo_inst();
        assert!(rate("mcf_like") > rate("gcc_like"));
        assert!(rate("gcc_like") > rate("namd_like"));
    }

    #[test]
    fn mcf_is_the_pointer_chaser() {
        let suite = WorkloadSuite::spec_like();
        let max_chase = suite
            .iter()
            .max_by(|a, b| {
                a.pointer_chase_fraction()
                    .partial_cmp(&b.pointer_chase_fraction())
                    .expect("fractions are finite")
            })
            .expect("suite not empty");
        assert_eq!(max_chase.name(), "mcf_like");
    }

    #[test]
    fn lookup_by_name() {
        let suite = WorkloadSuite::spec_like();
        assert!(suite.get("lbm_like").is_some());
        assert!(suite.get("missing").is_none());
    }

    #[test]
    fn extremes_has_both_poles() {
        let suite = WorkloadSuite::extremes();
        assert_eq!(suite.len(), 2);
        assert!(!suite.is_empty());
        assert!(suite.get("mem_bound").is_some());
        assert!(suite.get("compute_bound").is_some());
    }

    #[test]
    fn collect_into_suite() {
        let suite: WorkloadSuite = WorkloadSuite::spec_like()
            .iter()
            .filter(|p| p.name().starts_with('m'))
            .cloned()
            .collect();
        assert!(suite.iter().all(|p| p.name().starts_with('m')));
        assert!(!suite.is_empty());
    }
}
